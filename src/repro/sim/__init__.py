"""repro.sim: batched Monte-Carlo sweep engine and scenario registry.

This package is the fast path for regenerating the paper's quantitative
claims at scale.  Where :class:`repro.core.link.LinkSimulator` simulates one
packet at a time through the full transceiver stack, the
:class:`SweepEngine` vectorizes packet generation, channel application,
AWGN, and demodulation over a batch axis and runs whole grids of operating
points — (Eb/N0 x modulation x channel scenario x ADC resolution) — with
per-point seeded random streams and optional process-pool parallelism.

Usage::

    import numpy as np
    from repro.sim import SweepEngine, sweep_grid

    engine = SweepEngine(generation="gen2", seed=7)

    # One curve: Eb/N0 sweep over a clean AWGN link.
    curve = engine.ber_curve(np.arange(0.0, 12.0, 2.0),
                             scenario="awgn", num_packets=64)
    print(curve.as_rows())

    # A full grid: two scenarios x two modulations x an ADC-resolution axis,
    # fanned out over 4 worker processes.
    grid = sweep_grid(np.arange(0.0, 12.0, 2.0),
                      scenarios=("awgn", "cm3"),
                      modulations=("bpsk", "ook"),
                      adc_bits=(1, 4))
    result = SweepEngine(seed=7, max_workers=4).run(grid, num_packets=64)
    for label, curve in result.curves().items():
        print(label, curve.ber_values())

Scenarios are resolved by name against :data:`repro.sim.SCENARIOS`
(AWGN, two-ray, exponential-decay, 802.15.3a CM1-CM4, narrowband and
partial-band interference, gen-1/gen-2 baseline presets); register custom
environments with :meth:`ScenarioRegistry.register`.

Three backends share the same grid interface: ``backend="batch"``
(default) is the vectorized genie-timed kernel in :mod:`repro.sim.batch`;
``backend="fullstack"`` is the batched full receiver chain in
:mod:`repro.sim.batch_rx` — real acquisition, channel estimation, RAKE
and Viterbi over a batch axis, bit-decision-identical to the packet loop
at a fraction of its cost; ``backend="packet"`` drives the per-packet
transceiver stack one packet at a time (the reference oracle the
fullstack backend is pinned against).

Orthogonal to that choice, the batch kernel's array operations run on a
pluggable *array backend* (:mod:`repro.sim.backends`): the NumPy
reference (bit-identical to the historical code), CuPy (CUDA GPUs), or
JAX — ``SweepEngine(array_backend="cupy")``, ``--array-backend`` on the
CLI, or the ``REPRO_ARRAY_BACKEND`` environment variable.  Process
fan-out (``max_workers``) returns results through
``multiprocessing.shared_memory`` blocks (:mod:`repro.sim.shm`) instead
of pickles, bit-identical to a serial run.
"""

from repro.sim.backends import (
    ArrayBackend,
    CupyBackend,
    JaxBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    reference_backend,
    register_backend,
)
from repro.sim.batch import BatchedLinkModel, BatchResult, pulse_for_config
from repro.sim.batch_rx import BatchedFullStackModel, FullStackBatchResult
from repro.sim.engine import SweepEngine, SweepPoint, SweepResult, sweep_grid
from repro.sim.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    default_registry,
)
from repro.sim.shm import ChunkResultBlock

__all__ = [
    "ArrayBackend",
    "BatchResult",
    "BatchedFullStackModel",
    "BatchedLinkModel",
    "FullStackBatchResult",
    "ChunkResultBlock",
    "CupyBackend",
    "JaxBackend",
    "NumpyBackend",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "SweepEngine",
    "SweepPoint",
    "SweepResult",
    "available_backends",
    "default_registry",
    "get_backend",
    "pulse_for_config",
    "reference_backend",
    "register_backend",
    "sweep_grid",
]
