"""Grid-level Monte-Carlo sweep engine.

A :class:`SweepEngine` runs whole grids of operating points — Eb/N0 x
modulation x channel scenario x ADC resolution — through one of three
backends: the vectorized genie-timed batch kernel
(:class:`repro.sim.batch.BatchedLinkModel`, the default), the batched
full-stack receiver (``backend="fullstack"``,
:class:`repro.sim.batch_rx.BatchedFullStackModel` — real acquisition,
channel estimation, RAKE and Viterbi, bit-decision-identical to the
packet loop), or the full per-packet transceiver stack
(``backend="packet"``, the reference oracle, bit-exact with the legacy
:class:`repro.core.link.LinkSimulator` flow).

Reproducibility: every grid point gets its own :class:`numpy.random
.Generator` keyed on the engine seed *and the point's content* (not its
grid position), so results are identical for the same seed no matter how
the grid is ordered, chunked, or spread across worker processes.  The flip
side: duplicated points in one grid share a stream and return identical
measurements — use different seeds (or engines) to replicate a point.

Array backends: the batch kernel's array operations run on a pluggable
:class:`repro.sim.backends.ArrayBackend` — NumPy (reference,
bit-identical to the historical code), CuPy, or JAX — selected with
``array_backend=`` or the ``REPRO_ARRAY_BACKEND`` environment variable.

Parallelism: the schedulable unit is the seeded *packet chunk* — a
``(point, num_packets, packet_offset)`` span with its own content-keyed
random stream.  ``chunk_packets`` splits every point into chunks of that
size (ragged tail allowed) and ``max_workers`` fans the chunks of *all*
points out over one ``concurrent.futures.ProcessPoolExecutor``, so a
single hot point no longer serializes on one core.  Chunk inputs stream
to workers through a :class:`repro.sim.shm.ChunkTaskBlock` and results
come back through a :class:`repro.sim.shm.ChunkResultBlock` (written in
place, never pickled); each chunk fails independently, and completed
chunks are still harvested when a sibling's worker raises or dies.  For
a fixed chunk layout, results are bitwise identical however the chunks
are scheduled — serial, any worker count, any completion order; the
default layout (``chunk_packets=None``, one chunk per point at offset 0)
is bit-exact with the historical unchunked engine.  ``shared_memory=
False`` falls back to the pickling pool.  Scenarios shipped to workers
must be picklable — every built-in scenario is; custom scenarios should
use module-level factory functions rather than lambdas.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
import warnings
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from itertools import product

import numpy as np

from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import BERCurve, BERPoint
from repro.obs.recorder import NULL_RECORDER, Recorder, activate
from repro.sim.backends import ArrayBackend, get_backend
from repro.sim.batch import BatchedLinkModel
from repro.sim.scenarios import SCENARIOS, Scenario, ScenarioRegistry
from repro.sim.shm import SLOT_OK, ChunkResultBlock, ChunkTaskBlock
from repro.utils.validation import require_int

_logger = logging.getLogger(__name__)

__all__ = ["SweepPoint", "SweepResult", "SweepEngine", "sweep_grid",
           "chunk_spans"]

_BACKENDS = ("batch", "packet", "fullstack")
# 2: the gen-1 front half (pulse synthesis, real-waveform channel conv,
# AGC, interleaved-flash ADC) went batched — decisions are pinned to the
# packet oracle, but the batch FFT widths shift float intermediates at
# rounding level, so gen-1 fullstack cache entries must not be reused.
_FULLSTACK_RX_VERSION = 2
_FULL_STACK_BPSK_MESSAGE = (
    "backend={backend!r} drives the full transceiver stack, which is "
    "BPSK-only, but the grid sweeps modulation(s) {modulations}; use "
    "backend='batch' for other modulations or drop them from the grid")


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep grid."""

    ebn0_db: float
    scenario: str = "awgn"
    modulation: str = "bpsk"
    adc_bits: int | None = None

    def curve_key(self) -> tuple[str, str, int | None]:
        """Grouping key: all points sharing it belong to one BER curve."""
        return (self.scenario, self.modulation, self.adc_bits)


def sweep_grid(ebn0_values_db, scenarios=("awgn",), modulations=("bpsk",),
               adc_bits=(None,)) -> tuple[SweepPoint, ...]:
    """The Cartesian product of the sweep axes as grid points.

    Eb/N0 varies fastest, so consecutive points of the same curve stay
    adjacent (helpful when eyeballing partial results).

    Every axis must be non-empty and the Eb/N0 values finite; an empty axis
    or a NaN/inf operating point would otherwise surface far downstream as
    an empty grid or a NaN curve.
    """
    ebn0_values_db = tuple(ebn0_values_db)
    scenarios = tuple(scenarios)
    modulations = tuple(modulations)
    adc_bits = tuple(adc_bits)
    for name, axis in (("ebn0_values_db", ebn0_values_db),
                       ("scenarios", scenarios),
                       ("modulations", modulations),
                       ("adc_bits", adc_bits)):
        if len(axis) == 0:
            raise ValueError(f"sweep axis {name!r} is empty; every axis "
                             "needs at least one value")
    ebn0_array = np.asarray(ebn0_values_db, dtype=float)
    if not np.all(np.isfinite(ebn0_array)):
        bad = ebn0_array[~np.isfinite(ebn0_array)]
        raise ValueError("ebn0_values_db must be finite; got "
                         f"{bad.tolist()}")
    return tuple(
        SweepPoint(ebn0_db=float(ebn0), scenario=scenario,
                   modulation=modulation, adc_bits=bits)
        for scenario, modulation, bits, ebn0
        in product(scenarios, modulations, adc_bits, ebn0_values_db))


@dataclass
class SweepResult:
    """All measured points of one sweep, grouped into curves on demand.

    Attributes
    ----------
    entries:
        ``(point, measurement)`` pairs in grid order.
    errors_per_packet:
        Only populated when the sweep ran with
        ``collect_errors_per_packet=True``: maps each grid point to its
        per-packet bit-error counts (a tuple of ints, one per packet).
    """

    entries: list[tuple[SweepPoint, BERPoint]] = field(default_factory=list)
    errors_per_packet: dict = field(default_factory=dict)

    def curve(self, scenario: str = "awgn", modulation: str = "bpsk",
              adc_bits: int | None = None,
              label: str | None = None) -> BERCurve:
        """The BER curve of one (scenario, modulation, adc_bits) combination.

        Raises ``KeyError`` when no swept point matches, so a mistyped (or
        forgotten) axis value fails here rather than as an empty plot
        downstream.
        """
        key = (scenario, modulation, adc_bits)
        if label is None:
            label = self._label_for(key)
        curve = BERCurve(label=label)
        for point, measurement in self.entries:
            if point.curve_key() == key:
                curve.add(measurement)
        if not curve.points:
            available = sorted({self._label_for(point.curve_key())
                                for point, _ in self.entries})
            raise KeyError(f"no swept points match {self._label_for(key)!r}; "
                           f"swept curves: {', '.join(available) or '(none)'}")
        return curve

    def curves(self) -> dict[str, BERCurve]:
        """Every curve in the sweep, keyed by a readable label."""
        result: dict[str, BERCurve] = {}
        for point, measurement in self.entries:
            label = self._label_for(point.curve_key())
            result.setdefault(label, BERCurve(label=label)).add(measurement)
        return result

    @staticmethod
    def _label_for(key: tuple[str, str, int | None]) -> str:
        scenario, modulation, adc_bits = key
        label = f"{scenario}/{modulation}"
        if adc_bits is not None:
            label += f"/adc{adc_bits}"
        return label


@dataclass(frozen=True)
class _PointTask:
    """Everything a worker process needs to measure one grid point."""

    point: SweepPoint
    scenario: Scenario
    config: object | None
    generation: str
    backend: str
    quantize: bool
    num_packets: int
    payload_bits_per_packet: int
    seed_entropy: object
    spawn_key: tuple
    array_backend: str = "numpy"


def _point_digest_text(point: SweepPoint) -> str:
    """Canonical text identifying a point's content (not its grid position)."""
    return repr((float(point.ebn0_db), point.scenario, point.modulation,
                 point.adc_bits))


def _point_spawn_key(point: SweepPoint,
                     packet_offset: int = 0) -> tuple[int, ...]:
    """A stable ``SeedSequence`` spawn key derived from the point's content.

    Keying streams on content rather than grid position keeps results
    identical when the grid is reordered, chunked, or sharded.  A non-zero
    ``packet_offset`` extends the key, giving escalation chunks (packets
    simulated *on top of* an earlier measurement of the same point) an
    independent stream; offset 0 is bit-exact with the historical scheme.
    """
    digest = hashlib.sha256(
        _point_digest_text(point).encode("utf-8")).digest()
    key = tuple(int.from_bytes(digest[i:i + 4], "little")
                for i in range(0, 16, 4))
    if packet_offset:
        key += (int(packet_offset),)
    return key


def _resolve_config(task: _PointTask):
    """The effective transceiver configuration for one task."""
    config = task.config
    if config is None:
        config = (Gen1Config.fast_test_config()
                  if task.generation == "gen1"
                  else Gen2Config.fast_test_config())
    if task.point.adc_bits is not None:
        config = config.with_changes(adc_bits=task.point.adc_bits)
    return config


def _run_point_record(task: _PointTask) -> tuple[BERPoint, np.ndarray]:
    """Measure one grid point, returning the measurement *and* the
    per-packet bit-error counts (runs in the caller or a worker process)."""
    root = np.random.SeedSequence(entropy=task.seed_entropy,
                                  spawn_key=task.spawn_key)
    scenario_seed, noise_seed, hardware_seed = root.spawn(3)
    scenario_rng = np.random.default_rng(scenario_seed)
    noise_rng = np.random.default_rng(noise_seed)

    config = _resolve_config(task)
    scenario = task.scenario
    point = task.point

    if task.backend == "batch":
        notch = (scenario.notch_frequency_hz
                 if getattr(config, "enable_digital_notch", False) else None)
        model = BatchedLinkModel(config, modulation=point.modulation,
                                 quantize=task.quantize,
                                 notch_frequency_hz=notch,
                                 backend=get_backend(task.array_backend))
        result = model.simulate(
            point.ebn0_db, task.num_packets, task.payload_bits_per_packet,
            rng=noise_rng,
            channel=scenario.make_channel(scenario_rng),
            interferer=scenario.make_interferer(scenario_rng))
        errors = np.asarray(result.errors_per_packet, dtype=np.int64)
        return result.to_ber_point(), errors

    if point.modulation != "bpsk":
        raise ValueError(_FULL_STACK_BPSK_MESSAGE.format(
            backend=task.backend, modulations=point.modulation))
    from repro.core.transceiver import Gen1Transceiver, Gen2Transceiver
    hardware_rng = np.random.default_rng(hardware_seed)
    transceiver_cls = (Gen1Transceiver if isinstance(config, Gen1Config)
                       else Gen2Transceiver)
    transceiver = transceiver_cls(config, rng=hardware_rng)

    if task.backend == "fullstack":
        # Batched full-stack receiver: same per-packet random-stream order
        # as the packet loop below (bit-decision-identical), DSP batched.
        from repro.sim.batch_rx import BatchedFullStackModel
        model = BatchedFullStackModel(
            transceiver, backend=get_backend(task.array_backend))
        batch = model.simulate(
            point.ebn0_db, task.num_packets, task.payload_bits_per_packet,
            rng=noise_rng,
            make_channel=lambda: scenario.make_channel(scenario_rng),
            make_interferer=lambda: scenario.make_interferer(scenario_rng))
        return batch.to_ber_point(), batch.errors_per_packet

    # backend == "packet": the reference full-stack flow, one packet at a
    # time (kept as the oracle the fullstack backend is pinned against).
    bit_errors = 0
    total_bits = 0
    packets_failed = 0
    errors_per_packet = np.zeros(task.num_packets, dtype=np.int64)
    for index in range(task.num_packets):
        simulation = transceiver.simulate_packet(
            num_payload_bits=task.payload_bits_per_packet,
            ebn0_db=point.ebn0_db,
            channel=scenario.make_channel(scenario_rng),
            interferer=scenario.make_interferer(scenario_rng),
            rng=noise_rng)
        errors_per_packet[index] = simulation.result.payload_bit_errors
        bit_errors += simulation.result.payload_bit_errors
        total_bits += simulation.result.num_payload_bits
        if not simulation.result.packet_success:
            packets_failed += 1
    measurement = BERPoint(ebn0_db=point.ebn0_db, bit_errors=bit_errors,
                           total_bits=total_bits,
                           packets_sent=task.num_packets,
                           packets_failed=packets_failed)
    return measurement, errors_per_packet


def _run_point(task: _PointTask) -> BERPoint:
    """Measure one grid point (the scalar-result variant of
    :func:`_run_point_record`, used by ``measure_point``)."""
    return _run_point_record(task)[0]


# ----------------------------------------------------------------------
# Chunk decomposition and scheduling
# ----------------------------------------------------------------------
def chunk_spans(num_packets: int, chunk_packets: int | None,
                packet_offset: int = 0) -> tuple[tuple[int, int], ...]:
    """Split a packet budget into ``(packet_offset, num_packets)`` chunk
    spans.

    ``chunk_packets=None`` keeps the budget as one span (the historical
    unchunked layout); otherwise consecutive spans of ``chunk_packets``
    packets starting at ``packet_offset``, the last one ragged.  A span is
    exactly the unit :class:`repro.runs.ResultStore` caches and
    :func:`_point_spawn_key` seeds, so the decomposition is deterministic
    for a given ``(num_packets, chunk_packets, packet_offset)`` whatever
    the scheduling: ``chunk_packets >= num_packets`` degenerates to the
    unchunked span, bit-exact included.
    """
    require_int(num_packets, "num_packets", minimum=1)
    require_int(packet_offset, "packet_offset", minimum=0)
    if chunk_packets is None:
        return ((packet_offset, num_packets),)
    require_int(chunk_packets, "chunk_packets", minimum=1)
    return tuple(
        (packet_offset + start, min(chunk_packets, num_packets - start))
        for start in range(0, num_packets, chunk_packets))


#: Backwards-compatible alias from before :func:`chunk_spans` became part
#: of the public chunk-planning surface (the serve broker plans with it).
_chunk_spans = chunk_spans


#: Test-only fault-injection hook.  When set (in the parent process,
#: before the worker pool forks), it is called as ``hook(task)``
#: immediately before every chunk task body — on the serial, pickling-pool
#: and shared-memory paths alike.  Raising (or killing the process) from
#: it makes exactly that chunk fail, which is how the fault-injection
#: suite exercises per-chunk isolation.  Never set this outside tests.
_chunk_task_hook = None

_PROTO_CACHE_LIMIT = 8
#: Worker-process cache of unpickled task prototypes, keyed by their
#: ChunkTaskBlock name, so a worker running many chunks of one fan-out
#: deserializes the prototypes once.
_proto_cache: dict = {}


def _materialize_chunk(prototype: _PointTask, num_packets: int,
                       packet_offset: int) -> _PointTask:
    """One chunk task from its point prototype: the chunk's packet budget
    plus the offset-keyed spawn key that gives it an independent stream."""
    return replace(prototype, num_packets=int(num_packets),
                   spawn_key=_point_spawn_key(prototype.point,
                                              int(packet_offset)))


def _run_chunk_task(task: _PointTask) -> tuple[BERPoint, np.ndarray]:
    """Run one chunk task body (through the fault-injection hook)."""
    if _chunk_task_hook is not None:
        _chunk_task_hook(task)
    return _run_point_record(task)


def _chunk_attrs(task: _PointTask, packet_offset: int) -> dict:
    """The telemetry identity of one chunk task (span attributes)."""
    point = task.point
    digest = hashlib.sha256(
        _point_digest_text(point).encode("utf-8")).hexdigest()[:12]
    return {"point": digest, "scenario": point.scenario,
            "ebn0_db": float(point.ebn0_db),
            "packet_offset": int(packet_offset),
            "packets": int(task.num_packets), "backend": task.backend}


def _run_chunk_traced(task: _PointTask, packet_offset: int, recorder,
                      queue_wait_s: float | None = None):
    """Run one chunk task under a ``chunk.run`` telemetry span.

    With the null recorder this *is* :func:`_run_chunk_task` — no clock
    read, no attribute hashing — keeping the disabled path a true no-op.
    The recorder is also installed as the active one for the chunk body,
    so the per-stage receiver spans land in the same event stream.
    """
    if not recorder.enabled:
        return _run_chunk_task(task)
    attrs = _chunk_attrs(task, packet_offset)
    if queue_wait_s is not None:
        attrs["queue_wait_s"] = float(queue_wait_s)
    with activate(recorder):
        with recorder.span("chunk.run", **attrs):
            return _run_chunk_task(task)


def _worker_telemetry(telemetry: bool, submit_t: float | None):
    """A worker-process recorder plus the chunk's pool queue wait.

    Workers never record into the recorder a fork inherited from the
    parent — each task gets a fresh one (or the null recorder) and ships
    its drained events back with the result.  The queue wait is measured
    against the parent's ``time.monotonic`` submission stamp
    (``CLOCK_MONOTONIC`` is system-wide on Linux, so the delta is valid
    across processes); clock adjustments clamp to zero, never negative.
    """
    recorder = Recorder() if telemetry else NULL_RECORDER
    queue_wait = None
    if telemetry and submit_t is not None:
        queue_wait = max(time.monotonic() - float(submit_t), 0.0)
    return recorder, queue_wait


def _run_slot_task(task_block_name: str, result_block_name: str, slot: int,
                   record_errors: bool, telemetry: bool = False,
                   submit_t: float | None = None) -> tuple[int, list | None]:
    """Worker body: rebuild chunk task ``slot`` from the shared task
    block, simulate it, write its record into the shared result block.

    Only two block names and a slot index cross the pickle boundary —
    the task inputs stream through shared memory, and the per-fan-out
    prototypes are unpickled once per worker process (``_proto_cache``).
    Returns ``(slot, events)`` where ``events`` is the worker-side
    telemetry batch (``None`` when telemetry is off).
    """
    recorder, queue_wait = _worker_telemetry(telemetry, submit_t)
    with activate(recorder):
        prototypes = _proto_cache.get(task_block_name)
        with ChunkTaskBlock.attach(task_block_name) as tasks:
            proto_index, num_packets, packet_offset = tasks.row(slot)
            if prototypes is None:
                if len(_proto_cache) >= _PROTO_CACHE_LIMIT:
                    _proto_cache.clear()
                prototypes = tasks.prototypes()
                _proto_cache[task_block_name] = prototypes
        task = _materialize_chunk(prototypes[proto_index], num_packets,
                                  packet_offset)
        measurement, errors = _run_chunk_traced(task, packet_offset,
                                                recorder, queue_wait)
        with ChunkResultBlock.attach(result_block_name) as results:
            results.write_result(slot, measurement,
                                 errors if record_errors else None)
    return slot, (recorder.drain() if telemetry else None)


def _run_chunk_task_events(task: _PointTask, packet_offset: int,
                           telemetry: bool = False,
                           submit_t: float | None = None) -> tuple:
    """Pickling-pool worker body: run one chunk, return ``(record,
    events)`` where ``events`` is the worker-side telemetry batch
    (``None`` when telemetry is off)."""
    recorder, queue_wait = _worker_telemetry(telemetry, submit_t)
    record = _run_chunk_traced(task, packet_offset, recorder, queue_wait)
    return record, (recorder.drain() if telemetry else None)


def _run_chunks_shared(prototypes, rows, error_packets: int,
                       max_workers: int,
                       recorder=NULL_RECORDER) -> tuple[list,
                                                        BaseException | None]:
    """Fan chunk tasks over a process pool with shared-memory transport.

    ``rows`` are ``(prototype_index, num_packets, packet_offset)`` chunk
    tasks; each is submitted as its own future, so chunks from every
    point interleave freely over the pool and fail independently.
    Returns ``(records, failure)``: one ``(measurement,
    errors_per_packet)`` pair per row in row order — ``None`` for a chunk
    whose worker raised or died (its slot status never flipped, so a
    half-written record is never read back as garbage) — and the first
    failure in submission order, or ``None``.  Completed chunks are
    always harvested, whatever happened to their siblings, and both
    shared-memory blocks are torn down in a ``finally``.  A block
    allocation failure raises a ``RuntimeError`` naming the failed
    allocation before any task runs — tasks are never silently dropped.

    With an enabled ``recorder``, the parent records block pack/alloc
    spans and sizes plus the pool fan-out span, each worker records its
    own ``chunk.run`` span (including pool queue wait) and ships the
    batch back with its future, and harvested-after-failure slots are
    counted — telemetry rides the existing transport, never a second
    channel.
    """
    telemetry = recorder.enabled
    with recorder.span("shm.pack", tasks=len(rows)):
        try:
            task_block = ChunkTaskBlock.pack(prototypes, rows)
        except OSError as error:
            raise RuntimeError(
                f"failed to allocate the shared-memory task block for "
                f"{len(rows)} chunk task(s): {error}; no chunk was run "
                "(is /dev/shm full?)") from error
    recorder.gauge("shm.task_block_bytes", task_block.size_bytes)
    result_block = None
    failure: BaseException | None = None
    try:
        with recorder.span("shm.alloc", tasks=len(rows)):
            try:
                result_block = ChunkResultBlock.allocate(len(rows),
                                                         error_packets)
            except OSError as error:
                raise RuntimeError(
                    f"failed to allocate the shared-memory result block for "
                    f"{len(rows)} chunk task(s) x {error_packets} error "
                    f"word(s): {error}; no chunk was run "
                    "(is /dev/shm full?)") from error
        recorder.gauge("shm.result_block_bytes", result_block.size_bytes)
        workers = min(int(max_workers), len(rows))
        recorder.gauge("pool.workers", workers)
        with recorder.span("pool.run", workers=workers, tasks=len(rows)):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_slot_task, task_block.name,
                                       result_block.name, slot,
                                       error_packets > 0, telemetry,
                                       time.monotonic() if telemetry
                                       else None)
                           for slot in range(len(rows))]
                for future in futures:
                    try:
                        _, events = future.result()
                        recorder.absorb(events)
                    except BaseException as error:  # noqa: BLE001 re-raised
                        if failure is None:
                            failure = error
        records = [result_block.read_result(slot)
                   if result_block.slot_status(slot) == SLOT_OK else None
                   for slot in range(len(rows))]
        if failure is not None:
            harvested = sum(1 for record in records if record is not None)
            if harvested:
                recorder.counter("shm.slots_harvested_after_failure",
                                 harvested)
    finally:
        for block in (task_block, result_block):
            if block is None:
                continue
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
    return records, failure


class SweepEngine:
    """Batched Monte-Carlo driver for grids of link operating points.

    Parameters
    ----------
    config:
        Base transceiver configuration; ``None`` picks the generation's
        ``fast_test_config``.  Per-point ``adc_bits`` overrides are applied
        on top of it.
    generation:
        ``"gen1"`` or ``"gen2"``; scenarios with a pinned generation
        override this.
    registry:
        Scenario registry to resolve names against (default: the shared
        :data:`repro.sim.scenarios.SCENARIOS`).
    seed:
        Root seed; each grid point derives an independent child stream, so
        equal seeds give identical results whatever the execution order.
    backend:
        ``"batch"`` (vectorized genie-timed kernel), ``"fullstack"``
        (batched full receiver chain — acquisition, channel estimation,
        RAKE, Viterbi — bit-decision-identical to the packet loop at a
        fraction of its cost; see :mod:`repro.sim.batch_rx`), or
        ``"packet"`` (the per-packet reference oracle, bit-exact with
        ``LinkSimulator``).  The full-stack backends are BPSK-only and
        reject other modulations when the grid is submitted.
    quantize:
        Batch backend only: model AGC + ADC quantization (default on).
    max_workers:
        When set (> 1), chunk tasks are distributed over that many worker
        processes (overridable per call via :meth:`run`).
    chunk_packets:
        Default chunk layout: every point's packet budget is split into
        seeded chunks of this many packets (ragged tail allowed), which
        become the schedulable, cacheable unit of work — a single hot
        point then scales across the worker pool.  ``None`` (default)
        keeps one chunk per point, bit-exact with the historical
        unchunked engine.  The layout shapes *which* independent streams
        are drawn, so different layouts give statistically equivalent but
        not bitwise-equal results; for a fixed layout, results are
        bitwise invariant under scheduling (serial vs. any worker count).
        Overridable per call via :meth:`run`/:meth:`measure_points`;
        excluded from :meth:`config_digest` (layout is coverage, not
        identity — mirroring ``num_packets``).
    array_backend:
        Array backend the batch kernel runs on: ``None`` (the
        ``REPRO_ARRAY_BACKEND`` environment variable, defaulting to the
        bit-identical NumPy reference), a registered name (``"numpy"``,
        ``"cupy"``, ``"jax"``), or an
        :class:`~repro.sim.backends.ArrayBackend` instance (cached by
        name so forked workers resolve to the same object).  Explicit
        names raise when the library is missing; the environment variable
        falls back to NumPy with a warning.
    shared_memory:
        Process fan-out transport: ``True`` (default) returns worker
        results through :mod:`repro.sim.shm` blocks; ``False`` pickles
        them through the executor (the slower historical path, kept for
        comparison and as an escape hatch).
    recorder:
        Optional :class:`repro.obs.Recorder` collecting run telemetry
        (chunk latency spans, pool queue waits, shm block sizes,
        per-stage receiver timing).  ``None`` (default) installs the
        no-op null recorder: zero clock reads, zero events.  Telemetry
        is *bitwise invisible* — results and :meth:`config_digest` are
        identical whether recording is on or off, and the recorder is
        deliberately excluded from the digest so enabling it never
        invalidates :mod:`repro.runs` caches.
    """

    def __init__(self, config=None, generation: str = "gen2",
                 registry: ScenarioRegistry | None = None, seed: int = 0,
                 backend: str = "batch", quantize: bool = True,
                 max_workers: int | None = None,
                 array_backend: str | ArrayBackend | None = None,
                 shared_memory: bool = True,
                 chunk_packets: int | None = None,
                 recorder=None) -> None:
        if generation not in ("gen1", "gen2"):
            raise ValueError("generation must be 'gen1' or 'gen2'")
        if backend not in _BACKENDS:
            raise ValueError("backend must be one of "
                             + ", ".join(repr(name) for name in _BACKENDS))
        if max_workers is not None:
            require_int(max_workers, "max_workers", minimum=1)
        if chunk_packets is not None:
            require_int(chunk_packets, "chunk_packets", minimum=1)
        self.config = config
        self.generation = generation
        self.registry = registry if registry is not None else SCENARIOS
        self.seed = int(seed)
        self.backend = backend
        self.quantize = bool(quantize)
        self.max_workers = max_workers
        self.array_backend = get_backend(array_backend).name
        self.shared_memory = bool(shared_memory)
        self.chunk_packets = chunk_packets
        # Never part of config_digest(): telemetry is observability, not
        # identity — recording on/off must not split the result cache.
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    # ------------------------------------------------------------------
    # Identity hooks (used by the repro.runs result store)
    # ------------------------------------------------------------------
    @staticmethod
    def point_digest(point: SweepPoint) -> str:
        """A stable hex digest of a grid point's content.

        Two points with equal content digest identically no matter where
        they sit in a grid, so the digest is a safe cache-key component for
        the :mod:`repro.runs` result store.
        """
        return hashlib.sha256(
            _point_digest_text(point).encode("utf-8")).hexdigest()

    def config_digest(self) -> str:
        """A stable hex digest of everything engine-level that shapes results.

        Covers the seed, generation, backend, quantization choice, the
        full base configuration (field by field, ``None`` meaning the
        generation's ``fast_test_config``) and — for non-NumPy array
        backends, whose random streams are device-native — the array
        backend name.  The NumPy reference deliberately digests
        identically to pre-backend-abstraction engines, so existing
        :mod:`repro.runs` caches stay valid.  Two engines with equal
        digests produce bit-identical measurements for the same point and
        packet budget.
        """
        if self.config is None:
            config_description = ["default", self.generation]
        else:
            config_description = [type(self.config).__name__,
                                  repr(self.config)]
        payload = {
            "seed": self.seed,
            "generation": self.generation,
            "backend": self.backend,
            "quantize": self.quantize,
            "config": config_description,
        }
        if self.array_backend != "numpy":
            payload["array_backend"] = self.array_backend
        if self.backend == "fullstack":
            # Version the batched receiver separately: a future revision of
            # its numerics bumps this component, so stale repro.runs cache
            # entries can never collide with new fullstack measurements.
            # Batch/packet digests stay byte-identical to earlier releases.
            payload["fullstack_rx"] = _FULLSTACK_RX_VERSION
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Grid execution
    # ------------------------------------------------------------------
    def _validate_modulations(self, points) -> None:
        """Fail fast when a full-stack backend meets a non-BPSK grid.

        The packet and fullstack backends drive the real transceiver,
        which is BPSK-only; raising here — when the grid is submitted,
        before any point is simulated — replaces the historical failure
        deep inside ``measure_point`` after a possibly long partial sweep.
        """
        if self.backend == "batch":
            return
        unsupported = sorted({point.modulation for point in points
                              if point.modulation != "bpsk"})
        if unsupported:
            raise ValueError(_FULL_STACK_BPSK_MESSAGE.format(
                backend=self.backend,
                modulations=", ".join(unsupported)))

    def _task_for(self, point: SweepPoint, num_packets: int,
                  payload_bits_per_packet: int,
                  packet_offset: int = 0) -> _PointTask:
        """Bundle one grid point into a self-contained worker task."""
        scenario = self.registry.get(point.scenario)
        return _PointTask(
            point=point,
            scenario=scenario,
            config=self.config,
            generation=scenario.generation or self.generation,
            backend=self.backend,
            quantize=self.quantize,
            num_packets=num_packets,
            payload_bits_per_packet=payload_bits_per_packet,
            seed_entropy=self.seed,
            spawn_key=_point_spawn_key(point, packet_offset),
            array_backend=self.array_backend)

    def measure_point(self, point: SweepPoint, num_packets: int = 32,
                      payload_bits_per_packet: int = 64,
                      packet_offset: int = 0) -> BERPoint:
        """Measure a single grid point (the unit of work ``repro.runs`` caches).

        ``packet_offset`` names the chunk: offset 0 is bit-exact with
        :meth:`run` on a one-point grid, while a positive offset draws an
        independent stream so escalating a cached measurement from ``n`` to
        ``n + m`` packets simulates only the ``m``-packet tail chunk.
        """
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        require_int(packet_offset, "packet_offset", minimum=0)
        self._validate_modulations((point,))
        return _run_point(self._task_for(point, num_packets,
                                         payload_bits_per_packet,
                                         packet_offset))

    def _chunk_layout(self, chunk_packets) -> int | None:
        """The effective chunk layout for one call (``None`` = engine's)."""
        layout = self.chunk_packets if chunk_packets is None \
            else chunk_packets
        if layout is not None:
            require_int(layout, "chunk_packets", minimum=1)
        return layout

    def _chunk_plan(self, jobs, payload_bits_per_packet: int,
                    chunk_packets: int | None):
        """Decompose ``(point, num_packets, packet_offset)`` jobs into the
        chunk-task schedule.

        Returns ``(prototypes, rows, job_rows)``: one task prototype per
        distinct point (the expensive part, packed once into the shared
        task block), ``rows`` of ``(prototype_index, num_packets,
        packet_offset)`` chunk tasks in schedule order, and per job the
        row indices (in offset order) whose results merge into that job's
        measurement.
        """
        prototypes: list[_PointTask] = []
        proto_index: dict[SweepPoint, int] = {}
        rows: list[tuple[int, int, int]] = []
        job_rows: list[list[int]] = []
        for point, num_packets, packet_offset in jobs:
            index = proto_index.get(point)
            if index is None:
                index = len(prototypes)
                proto_index[point] = index
                prototypes.append(
                    self._task_for(point, 1, payload_bits_per_packet, 0))
            spans = chunk_spans(int(num_packets), chunk_packets,
                                int(packet_offset))
            job_rows.append(list(range(len(rows), len(rows) + len(spans))))
            rows.extend((index, packets, offset)
                        for offset, packets in spans)
        return prototypes, rows, job_rows

    def _execute_chunks(self, prototypes, rows, error_packets: int,
                        max_workers: int | None):
        """Run the chunk-task schedule serially or over a worker pool.

        Returns ``(records, failure)`` exactly like
        :func:`_run_chunks_shared`; the serial and pickling-pool paths
        produce the same per-chunk records (same seeds, same layout), so
        scheduling is bitwise invisible for a fixed chunk layout.  On the
        serial path a failing chunk stops the schedule (later rows record
        ``None``); on the pools every chunk fails independently.  Before
        a failure is returned, every failed chunk is logged with its
        identity — point digest, scenario, Eb/N0, packet offset — and
        the identities are attached to the exception as a note (Python
        3.11+), so a worker traceback never strands the caller without
        knowing *which* chunk died.
        """
        recorder = self.recorder
        telemetry = recorder.enabled
        if max_workers is not None and max_workers > 1 and len(rows) > 1:
            if self.shared_memory:
                records, failure = _run_chunks_shared(
                    prototypes, rows, error_packets, max_workers, recorder)
                failed = [i for i, record in enumerate(records)
                          if record is None]
            else:
                tasks = [(_materialize_chunk(prototypes[index], packets,
                                             offset), offset)
                         for index, packets, offset in rows]
                records = []
                failure = None
                workers = min(max_workers, len(tasks))
                recorder.gauge("pool.workers", workers)
                with recorder.span("pool.run", workers=workers,
                                   tasks=len(tasks)):
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        futures = [
                            pool.submit(_run_chunk_task_events, task, offset,
                                        telemetry,
                                        time.monotonic() if telemetry
                                        else None)
                            for task, offset in tasks]
                        for future in futures:
                            try:
                                record, events = future.result()
                                records.append(record)
                                recorder.absorb(events)
                            except BaseException as error:  # noqa: BLE001
                                records.append(None)
                                if failure is None:
                                    failure = error
                failed = [i for i, record in enumerate(records)
                          if record is None]
        else:
            records = []
            failure = None
            failed = []
            for index, packets, offset in rows:
                if failure is not None:
                    records.append(None)
                    continue
                try:
                    records.append(_run_chunk_traced(
                        _materialize_chunk(prototypes[index], packets,
                                           offset), offset, recorder))
                except BaseException as error:  # noqa: BLE001 - re-raised
                    # Only this chunk *failed*; later rows are skipped.
                    failed.append(len(records))
                    records.append(None)
                    failure = error
        if failure is not None and failed:
            self._note_chunk_failures(prototypes, rows, failed, failure)
        return records, failure

    def _note_chunk_failures(self, prototypes, rows, failed_indices,
                             failure: BaseException) -> None:
        """Log (and annotate onto ``failure``) which chunks failed."""
        identities = []
        for row_index in failed_indices:
            proto_index, packets, offset = rows[row_index]
            point = prototypes[proto_index].point
            identity = (f"point {self.point_digest(point)[:12]} "
                        f"({point.scenario}, {point.ebn0_db:g} dB) "
                        f"offset {offset} ({packets} packet(s))")
            identities.append(identity)
            _logger.error("chunk failed: %s: %r", identity, failure)
        self.recorder.counter("chunks.failed", len(failed_indices))
        if hasattr(failure, "add_note"):  # Python 3.11+
            failure.add_note("failed chunk(s): " + "; ".join(identities))

    @staticmethod
    def _merge_rows(records, row_indices) -> BERPoint:
        """Pool one job's chunk records (offset order) into its BERPoint."""
        merged = records[row_indices[0]][0]
        for row_index in row_indices[1:]:
            merged = merged.merge(records[row_index][0])
        return merged

    def measure_points(self, jobs, payload_bits_per_packet: int = 64,
                       max_workers: int | None = None,
                       chunk_packets: int | None = None,
                       on_chunk=None) -> list[BERPoint]:
        """Measure a batch of ``(point, num_packets, packet_offset)`` jobs.

        The bulk form of :meth:`measure_point` — with the default layout
        each job is measured exactly as its :meth:`measure_point` call
        would be (bit-identical results).  ``chunk_packets`` (``None``:
        the engine default) further splits every job into seeded chunks,
        and the chunks of *all* jobs fan out over one ``max_workers``
        pool with shared-memory input/result transport — the entry point
        :class:`repro.runs.RunDriver` uses to simulate a shard's cache
        misses, and the reason one hot point scales across the pool.

        ``on_chunk`` (optional) is called as ``on_chunk(point,
        packet_offset, measurement)`` for every *completed* chunk, in
        deterministic schedule order (job order, then offset order).  On
        a chunk failure every completed chunk is still delivered before
        the exception propagates — that is what lets a result store keep
        partial progress, so a resume re-runs only the missing chunks.
        """
        jobs = list(jobs)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        if max_workers is not None:
            require_int(max_workers, "max_workers", minimum=1)
        layout = self._chunk_layout(chunk_packets)
        for point, num_packets, packet_offset in jobs:
            # Validate before coercing, exactly as measure_point would.
            require_int(num_packets, "num_packets", minimum=1)
            require_int(packet_offset, "packet_offset", minimum=0)
        self._validate_modulations([point for point, _, _ in jobs])
        recorder = self.recorder
        with activate(recorder):
            with recorder.span("engine.chunk_plan", jobs=len(jobs)):
                prototypes, rows, job_rows = self._chunk_plan(
                    jobs, payload_bits_per_packet, layout)
            recorder.counter("chunks.scheduled", len(rows))
            # Scalar results only — no per-packet error region.
            records, failure = self._execute_chunks(prototypes, rows, 0,
                                                    max_workers)
        if on_chunk is not None:
            for (index, _, offset), record in zip(rows, records):
                if record is not None:
                    on_chunk(prototypes[index].point, offset, record[0])
        if failure is not None:
            raise failure
        return [self._merge_rows(records, row_indices)
                for row_indices in job_rows]

    def run(self, points, num_packets: int = 32,
            payload_bits_per_packet: int = 64,
            on_result=None, max_workers: int | None = None,
            collect_errors_per_packet: bool = False,
            chunk_packets: int | None = None) -> SweepResult:
        """Measure every grid point and return the collected results.

        Parameters
        ----------
        points:
            Grid points (e.g. from :func:`sweep_grid`).
        num_packets, payload_bits_per_packet:
            Monte-Carlo budget per grid point.
        on_result:
            Optional hook called as ``on_result(point, measurement)`` for
            every completed grid point, in grid order — what result
            stores use to persist points without waiting on the caller.
            Delivery happens after the chunk schedule finishes; on a
            chunk failure every point whose chunks all completed is still
            delivered before the exception propagates.
        max_workers:
            Overrides the engine-level ``max_workers`` for this call;
            when the effective value exceeds 1, the chunk tasks of all
            points fan out over worker processes with shared-memory
            input/result transport (see ``shared_memory``).
        collect_errors_per_packet:
            Also record each point's per-packet bit-error counts in
            ``SweepResult.errors_per_packet`` (transported through shared
            memory on the parallel path, so a million-packet point's
            error vector never crosses a pickle).  Chunk error vectors
            concatenate in offset order, identical to the serial order.
        chunk_packets:
            Chunk layout override for this call (``None``: the engine's
            ``chunk_packets``).  Splitting points into chunks lets a
            single hot point scale across the pool; for a fixed layout
            the result is bitwise invariant under scheduling.
        """
        points = tuple(points)
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        self._validate_modulations(points)
        effective_workers = (self.max_workers if max_workers is None
                             else max_workers)
        if effective_workers is not None:
            require_int(effective_workers, "max_workers", minimum=1)
        layout = self._chunk_layout(chunk_packets)
        duplicates = [point for point, count in Counter(points).items()
                      if count > 1]
        if duplicates:
            warnings.warn(
                f"sweep grid contains {len(duplicates)} duplicated point(s) "
                f"(e.g. {duplicates[0]}); duplicates share one seed stream "
                "and return identical measurements — use different seeds "
                "(or engines) to replicate a point",
                stacklevel=2)
        recorder = self.recorder
        with activate(recorder):
            with recorder.span("engine.chunk_plan", jobs=len(points)):
                prototypes, rows, job_rows = self._chunk_plan(
                    [(point, num_packets, 0) for point in points],
                    payload_bits_per_packet, layout)
            recorder.counter("chunks.scheduled", len(rows))
            error_packets = (max(packets for _, packets, _ in rows)
                             if collect_errors_per_packet and rows else 0)
            records, failure = self._execute_chunks(prototypes, rows,
                                                    error_packets,
                                                    effective_workers)
        result = SweepResult()
        for point, row_indices in zip(points, job_rows):
            parts = [records[row_index] for row_index in row_indices]
            if any(part is None for part in parts):
                continue    # a chunk of this point failed; salvage others
            merged = self._merge_rows(records, row_indices)
            if on_result is not None:
                on_result(point, merged)
            result.entries.append((point, merged))
            if collect_errors_per_packet:
                result.errors_per_packet[point] = tuple(
                    int(count) for _, errors in parts for count in errors)
        if failure is not None:
            raise failure
        return result

    def ber_curve(self, ebn0_values_db, scenario: str = "awgn",
                  modulation: str = "bpsk", adc_bits: int | None = None,
                  num_packets: int = 32, payload_bits_per_packet: int = 64,
                  label: str | None = None) -> BERCurve:
        """Sweep Eb/N0 for one environment and return the BER curve."""
        points = sweep_grid(ebn0_values_db, scenarios=(scenario,),
                            modulations=(modulation,), adc_bits=(adc_bits,))
        result = self.run(points, num_packets=num_packets,
                          payload_bits_per_packet=payload_bits_per_packet)
        return result.curve(scenario=scenario, modulation=modulation,
                            adc_bits=adc_bits, label=label)
