"""Grid-level Monte-Carlo sweep engine.

A :class:`SweepEngine` runs whole grids of operating points — Eb/N0 x
modulation x channel scenario x ADC resolution — through one of three
backends: the vectorized genie-timed batch kernel
(:class:`repro.sim.batch.BatchedLinkModel`, the default), the batched
full-stack receiver (``backend="fullstack"``,
:class:`repro.sim.batch_rx.BatchedFullStackModel` — real acquisition,
channel estimation, RAKE and Viterbi, bit-decision-identical to the
packet loop), or the full per-packet transceiver stack
(``backend="packet"``, the reference oracle, bit-exact with the legacy
:class:`repro.core.link.LinkSimulator` flow).

Reproducibility: every grid point gets its own :class:`numpy.random
.Generator` keyed on the engine seed *and the point's content* (not its
grid position), so results are identical for the same seed no matter how
the grid is ordered, chunked, or spread across worker processes.  The flip
side: duplicated points in one grid share a stream and return identical
measurements — use different seeds (or engines) to replicate a point.

Array backends: the batch kernel's array operations run on a pluggable
:class:`repro.sim.backends.ArrayBackend` — NumPy (reference,
bit-identical to the historical code), CuPy, or JAX — selected with
``array_backend=`` or the ``REPRO_ARRAY_BACKEND`` environment variable.

Parallelism: pass ``max_workers`` to fan grid points out over a
``concurrent.futures.ProcessPoolExecutor``.  Results return through
``multiprocessing.shared_memory`` blocks (:mod:`repro.sim.shm`) — one
block per worker chunk, written in place instead of pickled back — and
are bit-identical to a serial run; ``shared_memory=False`` falls back to
the pickling pool.  Scenarios shipped to workers must be picklable —
every built-in scenario is; custom scenarios should use module-level
factory functions rather than lambdas.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import BERCurve, BERPoint
from repro.sim.backends import ArrayBackend, get_backend
from repro.sim.batch import BatchedLinkModel
from repro.sim.scenarios import SCENARIOS, Scenario, ScenarioRegistry
from repro.sim.shm import ChunkResultBlock, chunk_slices
from repro.utils.validation import require_int

__all__ = ["SweepPoint", "SweepResult", "SweepEngine", "sweep_grid"]

_BACKENDS = ("batch", "packet", "fullstack")
# 2: the gen-1 front half (pulse synthesis, real-waveform channel conv,
# AGC, interleaved-flash ADC) went batched — decisions are pinned to the
# packet oracle, but the batch FFT widths shift float intermediates at
# rounding level, so gen-1 fullstack cache entries must not be reused.
_FULLSTACK_RX_VERSION = 2
_FULL_STACK_BPSK_MESSAGE = (
    "backend={backend!r} drives the full transceiver stack, which is "
    "BPSK-only, but the grid sweeps modulation(s) {modulations}; use "
    "backend='batch' for other modulations or drop them from the grid")


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep grid."""

    ebn0_db: float
    scenario: str = "awgn"
    modulation: str = "bpsk"
    adc_bits: int | None = None

    def curve_key(self) -> tuple[str, str, int | None]:
        """Grouping key: all points sharing it belong to one BER curve."""
        return (self.scenario, self.modulation, self.adc_bits)


def sweep_grid(ebn0_values_db, scenarios=("awgn",), modulations=("bpsk",),
               adc_bits=(None,)) -> tuple[SweepPoint, ...]:
    """The Cartesian product of the sweep axes as grid points.

    Eb/N0 varies fastest, so consecutive points of the same curve stay
    adjacent (helpful when eyeballing partial results).

    Every axis must be non-empty and the Eb/N0 values finite; an empty axis
    or a NaN/inf operating point would otherwise surface far downstream as
    an empty grid or a NaN curve.
    """
    ebn0_values_db = tuple(ebn0_values_db)
    scenarios = tuple(scenarios)
    modulations = tuple(modulations)
    adc_bits = tuple(adc_bits)
    for name, axis in (("ebn0_values_db", ebn0_values_db),
                       ("scenarios", scenarios),
                       ("modulations", modulations),
                       ("adc_bits", adc_bits)):
        if len(axis) == 0:
            raise ValueError(f"sweep axis {name!r} is empty; every axis "
                             "needs at least one value")
    ebn0_array = np.asarray(ebn0_values_db, dtype=float)
    if not np.all(np.isfinite(ebn0_array)):
        bad = ebn0_array[~np.isfinite(ebn0_array)]
        raise ValueError("ebn0_values_db must be finite; got "
                         f"{bad.tolist()}")
    return tuple(
        SweepPoint(ebn0_db=float(ebn0), scenario=scenario,
                   modulation=modulation, adc_bits=bits)
        for scenario, modulation, bits, ebn0
        in product(scenarios, modulations, adc_bits, ebn0_values_db))


@dataclass
class SweepResult:
    """All measured points of one sweep, grouped into curves on demand.

    Attributes
    ----------
    entries:
        ``(point, measurement)`` pairs in grid order.
    errors_per_packet:
        Only populated when the sweep ran with
        ``collect_errors_per_packet=True``: maps each grid point to its
        per-packet bit-error counts (a tuple of ints, one per packet).
    """

    entries: list[tuple[SweepPoint, BERPoint]] = field(default_factory=list)
    errors_per_packet: dict = field(default_factory=dict)

    def curve(self, scenario: str = "awgn", modulation: str = "bpsk",
              adc_bits: int | None = None,
              label: str | None = None) -> BERCurve:
        """The BER curve of one (scenario, modulation, adc_bits) combination.

        Raises ``KeyError`` when no swept point matches, so a mistyped (or
        forgotten) axis value fails here rather than as an empty plot
        downstream.
        """
        key = (scenario, modulation, adc_bits)
        if label is None:
            label = self._label_for(key)
        curve = BERCurve(label=label)
        for point, measurement in self.entries:
            if point.curve_key() == key:
                curve.add(measurement)
        if not curve.points:
            available = sorted({self._label_for(point.curve_key())
                                for point, _ in self.entries})
            raise KeyError(f"no swept points match {self._label_for(key)!r}; "
                           f"swept curves: {', '.join(available) or '(none)'}")
        return curve

    def curves(self) -> dict[str, BERCurve]:
        """Every curve in the sweep, keyed by a readable label."""
        result: dict[str, BERCurve] = {}
        for point, measurement in self.entries:
            label = self._label_for(point.curve_key())
            result.setdefault(label, BERCurve(label=label)).add(measurement)
        return result

    @staticmethod
    def _label_for(key: tuple[str, str, int | None]) -> str:
        scenario, modulation, adc_bits = key
        label = f"{scenario}/{modulation}"
        if adc_bits is not None:
            label += f"/adc{adc_bits}"
        return label


@dataclass(frozen=True)
class _PointTask:
    """Everything a worker process needs to measure one grid point."""

    point: SweepPoint
    scenario: Scenario
    config: object | None
    generation: str
    backend: str
    quantize: bool
    num_packets: int
    payload_bits_per_packet: int
    seed_entropy: object
    spawn_key: tuple
    array_backend: str = "numpy"


def _point_digest_text(point: SweepPoint) -> str:
    """Canonical text identifying a point's content (not its grid position)."""
    return repr((float(point.ebn0_db), point.scenario, point.modulation,
                 point.adc_bits))


def _point_spawn_key(point: SweepPoint,
                     packet_offset: int = 0) -> tuple[int, ...]:
    """A stable ``SeedSequence`` spawn key derived from the point's content.

    Keying streams on content rather than grid position keeps results
    identical when the grid is reordered, chunked, or sharded.  A non-zero
    ``packet_offset`` extends the key, giving escalation chunks (packets
    simulated *on top of* an earlier measurement of the same point) an
    independent stream; offset 0 is bit-exact with the historical scheme.
    """
    digest = hashlib.sha256(
        _point_digest_text(point).encode("utf-8")).digest()
    key = tuple(int.from_bytes(digest[i:i + 4], "little")
                for i in range(0, 16, 4))
    if packet_offset:
        key += (int(packet_offset),)
    return key


def _resolve_config(task: _PointTask):
    """The effective transceiver configuration for one task."""
    config = task.config
    if config is None:
        config = (Gen1Config.fast_test_config()
                  if task.generation == "gen1"
                  else Gen2Config.fast_test_config())
    if task.point.adc_bits is not None:
        config = config.with_changes(adc_bits=task.point.adc_bits)
    return config


def _run_point_record(task: _PointTask) -> tuple[BERPoint, np.ndarray]:
    """Measure one grid point, returning the measurement *and* the
    per-packet bit-error counts (runs in the caller or a worker process)."""
    root = np.random.SeedSequence(entropy=task.seed_entropy,
                                  spawn_key=task.spawn_key)
    scenario_seed, noise_seed, hardware_seed = root.spawn(3)
    scenario_rng = np.random.default_rng(scenario_seed)
    noise_rng = np.random.default_rng(noise_seed)

    config = _resolve_config(task)
    scenario = task.scenario
    point = task.point

    if task.backend == "batch":
        notch = (scenario.notch_frequency_hz
                 if getattr(config, "enable_digital_notch", False) else None)
        model = BatchedLinkModel(config, modulation=point.modulation,
                                 quantize=task.quantize,
                                 notch_frequency_hz=notch,
                                 backend=get_backend(task.array_backend))
        result = model.simulate(
            point.ebn0_db, task.num_packets, task.payload_bits_per_packet,
            rng=noise_rng,
            channel=scenario.make_channel(scenario_rng),
            interferer=scenario.make_interferer(scenario_rng))
        errors = np.asarray(result.errors_per_packet, dtype=np.int64)
        return result.to_ber_point(), errors

    if point.modulation != "bpsk":
        raise ValueError(_FULL_STACK_BPSK_MESSAGE.format(
            backend=task.backend, modulations=point.modulation))
    from repro.core.transceiver import Gen1Transceiver, Gen2Transceiver
    hardware_rng = np.random.default_rng(hardware_seed)
    transceiver_cls = (Gen1Transceiver if isinstance(config, Gen1Config)
                       else Gen2Transceiver)
    transceiver = transceiver_cls(config, rng=hardware_rng)

    if task.backend == "fullstack":
        # Batched full-stack receiver: same per-packet random-stream order
        # as the packet loop below (bit-decision-identical), DSP batched.
        from repro.sim.batch_rx import BatchedFullStackModel
        model = BatchedFullStackModel(
            transceiver, backend=get_backend(task.array_backend))
        batch = model.simulate(
            point.ebn0_db, task.num_packets, task.payload_bits_per_packet,
            rng=noise_rng,
            make_channel=lambda: scenario.make_channel(scenario_rng),
            make_interferer=lambda: scenario.make_interferer(scenario_rng))
        return batch.to_ber_point(), batch.errors_per_packet

    # backend == "packet": the reference full-stack flow, one packet at a
    # time (kept as the oracle the fullstack backend is pinned against).
    bit_errors = 0
    total_bits = 0
    packets_failed = 0
    errors_per_packet = np.zeros(task.num_packets, dtype=np.int64)
    for index in range(task.num_packets):
        simulation = transceiver.simulate_packet(
            num_payload_bits=task.payload_bits_per_packet,
            ebn0_db=point.ebn0_db,
            channel=scenario.make_channel(scenario_rng),
            interferer=scenario.make_interferer(scenario_rng),
            rng=noise_rng)
        errors_per_packet[index] = simulation.result.payload_bit_errors
        bit_errors += simulation.result.payload_bit_errors
        total_bits += simulation.result.num_payload_bits
        if not simulation.result.packet_success:
            packets_failed += 1
    measurement = BERPoint(ebn0_db=point.ebn0_db, bit_errors=bit_errors,
                           total_bits=total_bits,
                           packets_sent=task.num_packets,
                           packets_failed=packets_failed)
    return measurement, errors_per_packet


def _run_point(task: _PointTask) -> BERPoint:
    """Measure one grid point (the scalar-result variant of
    :func:`_run_point_record`, used by the pickling transport)."""
    return _run_point_record(task)[0]


def _simulate_chunk_into_block(block_name: str, num_slots: int,
                               max_packets: int, tasks: tuple) -> int:
    """Worker body for the shared-memory transport: attach to the chunk's
    block once, measure every task, write each record in place.

    A block sized with ``max_packets=0`` carries scalar records only —
    the per-packet error vectors are dropped instead of written, so
    callers that discard them never pay ``/dev/shm`` for them.
    """
    block = ChunkResultBlock.attach(block_name, num_slots, max_packets)
    try:
        for slot, task in enumerate(tasks):
            measurement, errors = _run_point_record(task)
            block.write_result(slot, measurement,
                               errors if max_packets > 0 else None)
    finally:
        block.close()
    return num_slots


def _run_tasks_shared(tasks, max_packets: int,
                      max_workers: int) -> tuple[list, BaseException | None]:
    """Fan tasks over a process pool, returning results through
    shared-memory blocks (one per worker chunk) instead of pickles.

    Returns ``(records, failure)``: ``records`` holds one
    ``(measurement, errors_per_packet)`` pair per task, in task order
    (error vectors are empty when ``max_packets`` is 0 — size blocks for
    them only when the caller keeps them), and ``failure`` is the first
    worker exception or ``None``.  When a worker chunk fails, its tasks'
    records are ``None`` but every *completed* chunk is still harvested,
    so the caller can salvage finished measurements before re-raising.
    Blocks are torn down deterministically in a ``finally`` whatever the
    workers did.
    """
    chunks = chunk_slices(len(tasks), max_workers)
    blocks = [ChunkResultBlock.allocate(len(chunk), max_packets)
              for chunk in chunks]
    records: list = [None] * len(tasks)
    failure: BaseException | None = None
    try:
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(_simulate_chunk_into_block, block.name,
                            len(chunk), max_packets,
                            tuple(tasks[index] for index in chunk))
                for chunk, block in zip(chunks, blocks)]
            for future, chunk, block in zip(futures, chunks, blocks):
                try:
                    future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised
                    if failure is None:
                        failure = error
                    continue
                for slot, index in enumerate(chunk):
                    records[index] = block.read_result(slot)
    finally:
        for block in blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
    return records, failure


class SweepEngine:
    """Batched Monte-Carlo driver for grids of link operating points.

    Parameters
    ----------
    config:
        Base transceiver configuration; ``None`` picks the generation's
        ``fast_test_config``.  Per-point ``adc_bits`` overrides are applied
        on top of it.
    generation:
        ``"gen1"`` or ``"gen2"``; scenarios with a pinned generation
        override this.
    registry:
        Scenario registry to resolve names against (default: the shared
        :data:`repro.sim.scenarios.SCENARIOS`).
    seed:
        Root seed; each grid point derives an independent child stream, so
        equal seeds give identical results whatever the execution order.
    backend:
        ``"batch"`` (vectorized genie-timed kernel), ``"fullstack"``
        (batched full receiver chain — acquisition, channel estimation,
        RAKE, Viterbi — bit-decision-identical to the packet loop at a
        fraction of its cost; see :mod:`repro.sim.batch_rx`), or
        ``"packet"`` (the per-packet reference oracle, bit-exact with
        ``LinkSimulator``).  The full-stack backends are BPSK-only and
        reject other modulations when the grid is submitted.
    quantize:
        Batch backend only: model AGC + ADC quantization (default on).
    max_workers:
        When set (> 1), grid points are distributed over that many worker
        processes (overridable per call via :meth:`run`).
    array_backend:
        Array backend the batch kernel runs on: ``None`` (the
        ``REPRO_ARRAY_BACKEND`` environment variable, defaulting to the
        bit-identical NumPy reference), a registered name (``"numpy"``,
        ``"cupy"``, ``"jax"``), or an
        :class:`~repro.sim.backends.ArrayBackend` instance (cached by
        name so forked workers resolve to the same object).  Explicit
        names raise when the library is missing; the environment variable
        falls back to NumPy with a warning.
    shared_memory:
        Process fan-out transport: ``True`` (default) returns worker
        results through :mod:`repro.sim.shm` blocks; ``False`` pickles
        them through the executor (the slower historical path, kept for
        comparison and as an escape hatch).
    """

    def __init__(self, config=None, generation: str = "gen2",
                 registry: ScenarioRegistry | None = None, seed: int = 0,
                 backend: str = "batch", quantize: bool = True,
                 max_workers: int | None = None,
                 array_backend: str | ArrayBackend | None = None,
                 shared_memory: bool = True) -> None:
        if generation not in ("gen1", "gen2"):
            raise ValueError("generation must be 'gen1' or 'gen2'")
        if backend not in _BACKENDS:
            raise ValueError("backend must be one of "
                             + ", ".join(repr(name) for name in _BACKENDS))
        if max_workers is not None:
            require_int(max_workers, "max_workers", minimum=1)
        self.config = config
        self.generation = generation
        self.registry = registry if registry is not None else SCENARIOS
        self.seed = int(seed)
        self.backend = backend
        self.quantize = bool(quantize)
        self.max_workers = max_workers
        self.array_backend = get_backend(array_backend).name
        self.shared_memory = bool(shared_memory)

    # ------------------------------------------------------------------
    # Identity hooks (used by the repro.runs result store)
    # ------------------------------------------------------------------
    @staticmethod
    def point_digest(point: SweepPoint) -> str:
        """A stable hex digest of a grid point's content.

        Two points with equal content digest identically no matter where
        they sit in a grid, so the digest is a safe cache-key component for
        the :mod:`repro.runs` result store.
        """
        return hashlib.sha256(
            _point_digest_text(point).encode("utf-8")).hexdigest()

    def config_digest(self) -> str:
        """A stable hex digest of everything engine-level that shapes results.

        Covers the seed, generation, backend, quantization choice, the
        full base configuration (field by field, ``None`` meaning the
        generation's ``fast_test_config``) and — for non-NumPy array
        backends, whose random streams are device-native — the array
        backend name.  The NumPy reference deliberately digests
        identically to pre-backend-abstraction engines, so existing
        :mod:`repro.runs` caches stay valid.  Two engines with equal
        digests produce bit-identical measurements for the same point and
        packet budget.
        """
        if self.config is None:
            config_description = ["default", self.generation]
        else:
            config_description = [type(self.config).__name__,
                                  repr(self.config)]
        payload = {
            "seed": self.seed,
            "generation": self.generation,
            "backend": self.backend,
            "quantize": self.quantize,
            "config": config_description,
        }
        if self.array_backend != "numpy":
            payload["array_backend"] = self.array_backend
        if self.backend == "fullstack":
            # Version the batched receiver separately: a future revision of
            # its numerics bumps this component, so stale repro.runs cache
            # entries can never collide with new fullstack measurements.
            # Batch/packet digests stay byte-identical to earlier releases.
            payload["fullstack_rx"] = _FULLSTACK_RX_VERSION
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Grid execution
    # ------------------------------------------------------------------
    def _validate_modulations(self, points) -> None:
        """Fail fast when a full-stack backend meets a non-BPSK grid.

        The packet and fullstack backends drive the real transceiver,
        which is BPSK-only; raising here — when the grid is submitted,
        before any point is simulated — replaces the historical failure
        deep inside ``measure_point`` after a possibly long partial sweep.
        """
        if self.backend == "batch":
            return
        unsupported = sorted({point.modulation for point in points
                              if point.modulation != "bpsk"})
        if unsupported:
            raise ValueError(_FULL_STACK_BPSK_MESSAGE.format(
                backend=self.backend,
                modulations=", ".join(unsupported)))

    def _task_for(self, point: SweepPoint, num_packets: int,
                  payload_bits_per_packet: int,
                  packet_offset: int = 0) -> _PointTask:
        """Bundle one grid point into a self-contained worker task."""
        scenario = self.registry.get(point.scenario)
        return _PointTask(
            point=point,
            scenario=scenario,
            config=self.config,
            generation=scenario.generation or self.generation,
            backend=self.backend,
            quantize=self.quantize,
            num_packets=num_packets,
            payload_bits_per_packet=payload_bits_per_packet,
            seed_entropy=self.seed,
            spawn_key=_point_spawn_key(point, packet_offset),
            array_backend=self.array_backend)

    def measure_point(self, point: SweepPoint, num_packets: int = 32,
                      payload_bits_per_packet: int = 64,
                      packet_offset: int = 0) -> BERPoint:
        """Measure a single grid point (the unit of work ``repro.runs`` caches).

        ``packet_offset`` names the chunk: offset 0 is bit-exact with
        :meth:`run` on a one-point grid, while a positive offset draws an
        independent stream so escalating a cached measurement from ``n`` to
        ``n + m`` packets simulates only the ``m``-packet tail chunk.
        """
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        require_int(packet_offset, "packet_offset", minimum=0)
        self._validate_modulations((point,))
        return _run_point(self._task_for(point, num_packets,
                                         payload_bits_per_packet,
                                         packet_offset))

    def measure_points(self, jobs, payload_bits_per_packet: int = 64,
                       max_workers: int | None = None) -> list[BERPoint]:
        """Measure a batch of ``(point, num_packets, packet_offset)`` jobs.

        The bulk form of :meth:`measure_point` — each job is measured
        exactly as its :meth:`measure_point` call would be (bit-identical
        results), but the batch can fan out over ``max_workers`` worker
        processes with shared-memory result transport.  This is the entry
        point :class:`repro.runs.RunDriver` uses to simulate a shard's
        cache misses.
        """
        jobs = list(jobs)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        if max_workers is not None:
            require_int(max_workers, "max_workers", minimum=1)
        for point, num_packets, packet_offset in jobs:
            # Validate before coercing, exactly as measure_point would.
            require_int(num_packets, "num_packets", minimum=1)
            require_int(packet_offset, "packet_offset", minimum=0)
        self._validate_modulations([point for point, _, _ in jobs])
        tasks = [self._task_for(point, int(num_packets),
                                payload_bits_per_packet, int(packet_offset))
                 for point, num_packets, packet_offset in jobs]
        if max_workers is not None and max_workers > 1 and len(tasks) > 1:
            if self.shared_memory:
                # Scalar results only — no per-packet error region.
                records, failure = _run_tasks_shared(tasks, 0, max_workers)
                if failure is not None:
                    raise failure
            else:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    return list(pool.map(_run_point, tasks))
            return [measurement for measurement, _ in records]
        return [_run_point(task) for task in tasks]

    def run(self, points, num_packets: int = 32,
            payload_bits_per_packet: int = 64,
            on_result=None, max_workers: int | None = None,
            collect_errors_per_packet: bool = False) -> SweepResult:
        """Measure every grid point and return the collected results.

        Parameters
        ----------
        points:
            Grid points (e.g. from :func:`sweep_grid`).
        num_packets, payload_bits_per_packet:
            Monte-Carlo budget per grid point.
        on_result:
            Optional hook called as ``on_result(point, measurement)`` for
            every grid point, in grid order — what result stores use to
            persist points without waiting on the caller.  Serial and
            pickling-pool runs deliver each point as it completes; the
            shared-memory transport delivers after its worker chunks
            finish, and on a worker failure still delivers every
            completed point before the exception propagates.
        max_workers:
            Overrides the engine-level ``max_workers`` for this call; when
            the effective value exceeds 1, points fan out over worker
            processes with shared-memory result transport (see
            ``shared_memory``).
        collect_errors_per_packet:
            Also record each point's per-packet bit-error counts in
            ``SweepResult.errors_per_packet`` (transported through shared
            memory on the parallel path, so a million-packet point's
            error vector never crosses a pickle).
        """
        points = tuple(points)
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        self._validate_modulations(points)
        effective_workers = (self.max_workers if max_workers is None
                             else max_workers)
        if effective_workers is not None:
            require_int(effective_workers, "max_workers", minimum=1)
        duplicates = [point for point, count in Counter(points).items()
                      if count > 1]
        if duplicates:
            warnings.warn(
                f"sweep grid contains {len(duplicates)} duplicated point(s) "
                f"(e.g. {duplicates[0]}); duplicates share one seed stream "
                "and return identical measurements — use different seeds "
                "(or engines) to replicate a point",
                stacklevel=2)
        tasks = [self._task_for(point, num_packets, payload_bits_per_packet)
                 for point in points]
        result = SweepResult()

        def record(point, measurement, errors) -> None:
            if on_result is not None:
                on_result(point, measurement)
            result.entries.append((point, measurement))
            if collect_errors_per_packet and errors is not None:
                result.errors_per_packet[point] = tuple(
                    int(count) for count in errors)

        if effective_workers is not None and effective_workers > 1 \
                and len(tasks) > 1:
            if self.shared_memory:
                error_region = (num_packets if collect_errors_per_packet
                                else 0)
                records, failure = _run_tasks_shared(tasks, error_region,
                                                     effective_workers)
                for point, chunk_record in zip(points, records):
                    if chunk_record is not None:
                        record(point, *chunk_record)
                if failure is not None:
                    raise failure
            elif collect_errors_per_packet:
                with ProcessPoolExecutor(
                        max_workers=effective_workers) as pool:
                    for point, (measurement, errors) in zip(
                            points, pool.map(_run_point_record, tasks)):
                        record(point, measurement, errors)
            else:
                with ProcessPoolExecutor(
                        max_workers=effective_workers) as pool:
                    for point, measurement in zip(points,
                                                  pool.map(_run_point,
                                                           tasks)):
                        record(point, measurement, None)
        else:
            for point, task in zip(points, tasks):
                measurement, errors = _run_point_record(task)
                record(point, measurement, errors)
        return result

    def ber_curve(self, ebn0_values_db, scenario: str = "awgn",
                  modulation: str = "bpsk", adc_bits: int | None = None,
                  num_packets: int = 32, payload_bits_per_packet: int = 64,
                  label: str | None = None) -> BERCurve:
        """Sweep Eb/N0 for one environment and return the BER curve."""
        points = sweep_grid(ebn0_values_db, scenarios=(scenario,),
                            modulations=(modulation,), adc_bits=(adc_bits,))
        result = self.run(points, num_packets=num_packets,
                          payload_bits_per_packet=payload_bits_per_packet)
        return result.curve(scenario=scenario, modulation=modulation,
                            adc_bits=adc_bits, label=label)
