"""Grid-level Monte-Carlo sweep engine.

A :class:`SweepEngine` runs whole grids of operating points — Eb/N0 x
modulation x channel scenario x ADC resolution — through either the
vectorized batch kernel (:class:`repro.sim.batch.BatchedLinkModel`, the
default) or the full per-packet transceiver stack (``backend="packet"``,
bit-exact with the legacy :class:`repro.core.link.LinkSimulator` flow).

Reproducibility: every grid point gets its own :class:`numpy.random
.Generator` keyed on the engine seed *and the point's content* (not its
grid position), so results are identical for the same seed no matter how
the grid is ordered, chunked, or spread across worker processes.  The flip
side: duplicated points in one grid share a stream and return identical
measurements — use different seeds (or engines) to replicate a point.

Parallelism: pass ``max_workers`` to fan grid points out over a
``concurrent.futures.ProcessPoolExecutor``.  Scenarios shipped to workers
must be picklable — every built-in scenario is; custom scenarios should use
module-level factory functions rather than lambdas.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import BERCurve, BERPoint
from repro.sim.batch import BatchedLinkModel
from repro.sim.scenarios import SCENARIOS, Scenario, ScenarioRegistry
from repro.utils.validation import require_int

__all__ = ["SweepPoint", "SweepResult", "SweepEngine", "sweep_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep grid."""

    ebn0_db: float
    scenario: str = "awgn"
    modulation: str = "bpsk"
    adc_bits: int | None = None

    def curve_key(self) -> tuple[str, str, int | None]:
        """Grouping key: all points sharing it belong to one BER curve."""
        return (self.scenario, self.modulation, self.adc_bits)


def sweep_grid(ebn0_values_db, scenarios=("awgn",), modulations=("bpsk",),
               adc_bits=(None,)) -> tuple[SweepPoint, ...]:
    """The Cartesian product of the sweep axes as grid points.

    Eb/N0 varies fastest, so consecutive points of the same curve stay
    adjacent (helpful when eyeballing partial results).

    Every axis must be non-empty and the Eb/N0 values finite; an empty axis
    or a NaN/inf operating point would otherwise surface far downstream as
    an empty grid or a NaN curve.
    """
    ebn0_values_db = tuple(ebn0_values_db)
    scenarios = tuple(scenarios)
    modulations = tuple(modulations)
    adc_bits = tuple(adc_bits)
    for name, axis in (("ebn0_values_db", ebn0_values_db),
                       ("scenarios", scenarios),
                       ("modulations", modulations),
                       ("adc_bits", adc_bits)):
        if len(axis) == 0:
            raise ValueError(f"sweep axis {name!r} is empty; every axis "
                             "needs at least one value")
    ebn0_array = np.asarray(ebn0_values_db, dtype=float)
    if not np.all(np.isfinite(ebn0_array)):
        bad = ebn0_array[~np.isfinite(ebn0_array)]
        raise ValueError("ebn0_values_db must be finite; got "
                         f"{bad.tolist()}")
    return tuple(
        SweepPoint(ebn0_db=float(ebn0), scenario=scenario,
                   modulation=modulation, adc_bits=bits)
        for scenario, modulation, bits, ebn0
        in product(scenarios, modulations, adc_bits, ebn0_values_db))


@dataclass
class SweepResult:
    """All measured points of one sweep, grouped into curves on demand."""

    entries: list[tuple[SweepPoint, BERPoint]] = field(default_factory=list)

    def curve(self, scenario: str = "awgn", modulation: str = "bpsk",
              adc_bits: int | None = None,
              label: str | None = None) -> BERCurve:
        """The BER curve of one (scenario, modulation, adc_bits) combination.

        Raises ``KeyError`` when no swept point matches, so a mistyped (or
        forgotten) axis value fails here rather than as an empty plot
        downstream.
        """
        key = (scenario, modulation, adc_bits)
        if label is None:
            label = self._label_for(key)
        curve = BERCurve(label=label)
        for point, measurement in self.entries:
            if point.curve_key() == key:
                curve.add(measurement)
        if not curve.points:
            available = sorted({self._label_for(point.curve_key())
                                for point, _ in self.entries})
            raise KeyError(f"no swept points match {self._label_for(key)!r}; "
                           f"swept curves: {', '.join(available) or '(none)'}")
        return curve

    def curves(self) -> dict[str, BERCurve]:
        """Every curve in the sweep, keyed by a readable label."""
        result: dict[str, BERCurve] = {}
        for point, measurement in self.entries:
            label = self._label_for(point.curve_key())
            result.setdefault(label, BERCurve(label=label)).add(measurement)
        return result

    @staticmethod
    def _label_for(key: tuple[str, str, int | None]) -> str:
        scenario, modulation, adc_bits = key
        label = f"{scenario}/{modulation}"
        if adc_bits is not None:
            label += f"/adc{adc_bits}"
        return label


@dataclass(frozen=True)
class _PointTask:
    """Everything a worker process needs to measure one grid point."""

    point: SweepPoint
    scenario: Scenario
    config: object | None
    generation: str
    backend: str
    quantize: bool
    num_packets: int
    payload_bits_per_packet: int
    seed_entropy: object
    spawn_key: tuple


def _point_digest_text(point: SweepPoint) -> str:
    """Canonical text identifying a point's content (not its grid position)."""
    return repr((float(point.ebn0_db), point.scenario, point.modulation,
                 point.adc_bits))


def _point_spawn_key(point: SweepPoint,
                     packet_offset: int = 0) -> tuple[int, ...]:
    """A stable ``SeedSequence`` spawn key derived from the point's content.

    Keying streams on content rather than grid position keeps results
    identical when the grid is reordered, chunked, or sharded.  A non-zero
    ``packet_offset`` extends the key, giving escalation chunks (packets
    simulated *on top of* an earlier measurement of the same point) an
    independent stream; offset 0 is bit-exact with the historical scheme.
    """
    digest = hashlib.sha256(
        _point_digest_text(point).encode("utf-8")).digest()
    key = tuple(int.from_bytes(digest[i:i + 4], "little")
                for i in range(0, 16, 4))
    if packet_offset:
        key += (int(packet_offset),)
    return key


def _resolve_config(task: _PointTask):
    config = task.config
    if config is None:
        config = (Gen1Config.fast_test_config()
                  if task.generation == "gen1"
                  else Gen2Config.fast_test_config())
    if task.point.adc_bits is not None:
        config = config.with_changes(adc_bits=task.point.adc_bits)
    return config


def _run_point(task: _PointTask) -> BERPoint:
    """Measure one grid point (runs in the caller or a worker process)."""
    root = np.random.SeedSequence(entropy=task.seed_entropy,
                                  spawn_key=task.spawn_key)
    scenario_seed, noise_seed, hardware_seed = root.spawn(3)
    scenario_rng = np.random.default_rng(scenario_seed)
    noise_rng = np.random.default_rng(noise_seed)

    config = _resolve_config(task)
    scenario = task.scenario
    point = task.point

    if task.backend == "batch":
        notch = (scenario.notch_frequency_hz
                 if getattr(config, "enable_digital_notch", False) else None)
        model = BatchedLinkModel(config, modulation=point.modulation,
                                 quantize=task.quantize,
                                 notch_frequency_hz=notch)
        result = model.simulate(
            point.ebn0_db, task.num_packets, task.payload_bits_per_packet,
            rng=noise_rng,
            channel=scenario.make_channel(scenario_rng),
            interferer=scenario.make_interferer(scenario_rng))
        return result.to_ber_point()

    # backend == "packet": the legacy full-stack flow, one packet at a time.
    if point.modulation != "bpsk":
        raise ValueError("the packet backend drives the full transceiver, "
                         "which is BPSK-only; use backend='batch' for other "
                         "modulations")
    from repro.core.transceiver import Gen1Transceiver, Gen2Transceiver
    hardware_rng = np.random.default_rng(hardware_seed)
    transceiver_cls = (Gen1Transceiver if isinstance(config, Gen1Config)
                       else Gen2Transceiver)
    transceiver = transceiver_cls(config, rng=hardware_rng)
    bit_errors = 0
    total_bits = 0
    packets_failed = 0
    for _ in range(task.num_packets):
        simulation = transceiver.simulate_packet(
            num_payload_bits=task.payload_bits_per_packet,
            ebn0_db=point.ebn0_db,
            channel=scenario.make_channel(scenario_rng),
            interferer=scenario.make_interferer(scenario_rng),
            rng=noise_rng)
        bit_errors += simulation.result.payload_bit_errors
        total_bits += simulation.result.num_payload_bits
        if not simulation.result.packet_success:
            packets_failed += 1
    return BERPoint(ebn0_db=point.ebn0_db, bit_errors=bit_errors,
                    total_bits=total_bits, packets_sent=task.num_packets,
                    packets_failed=packets_failed)


class SweepEngine:
    """Batched Monte-Carlo driver for grids of link operating points.

    Parameters
    ----------
    config:
        Base transceiver configuration; ``None`` picks the generation's
        ``fast_test_config``.  Per-point ``adc_bits`` overrides are applied
        on top of it.
    generation:
        ``"gen1"`` or ``"gen2"``; scenarios with a pinned generation
        override this.
    registry:
        Scenario registry to resolve names against (default: the shared
        :data:`repro.sim.scenarios.SCENARIOS`).
    seed:
        Root seed; each grid point derives an independent child stream, so
        equal seeds give identical results whatever the execution order.
    backend:
        ``"batch"`` (vectorized fast path) or ``"packet"`` (full per-packet
        transceiver stack, slower but bit-exact with ``LinkSimulator``).
    quantize:
        Batch backend only: model AGC + ADC quantization (default on).
    max_workers:
        When set (> 1), grid points are distributed over that many worker
        processes.
    """

    def __init__(self, config=None, generation: str = "gen2",
                 registry: ScenarioRegistry | None = None, seed: int = 0,
                 backend: str = "batch", quantize: bool = True,
                 max_workers: int | None = None) -> None:
        if generation not in ("gen1", "gen2"):
            raise ValueError("generation must be 'gen1' or 'gen2'")
        if backend not in ("batch", "packet"):
            raise ValueError("backend must be 'batch' or 'packet'")
        if max_workers is not None:
            require_int(max_workers, "max_workers", minimum=1)
        self.config = config
        self.generation = generation
        self.registry = registry if registry is not None else SCENARIOS
        self.seed = int(seed)
        self.backend = backend
        self.quantize = bool(quantize)
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    # Identity hooks (used by the repro.runs result store)
    # ------------------------------------------------------------------
    @staticmethod
    def point_digest(point: SweepPoint) -> str:
        """A stable hex digest of a grid point's content.

        Two points with equal content digest identically no matter where
        they sit in a grid, so the digest is a safe cache-key component for
        the :mod:`repro.runs` result store.
        """
        return hashlib.sha256(
            _point_digest_text(point).encode("utf-8")).hexdigest()

    def config_digest(self) -> str:
        """A stable hex digest of everything engine-level that shapes results.

        Covers the seed, generation, backend, quantization choice and the
        full base configuration (field by field, ``None`` meaning the
        generation's ``fast_test_config``).  Two engines with equal digests
        produce bit-identical measurements for the same point and packet
        budget, so the digest scopes cache entries in :mod:`repro.runs`.
        """
        if self.config is None:
            config_description = ["default", self.generation]
        else:
            config_description = [type(self.config).__name__,
                                  repr(self.config)]
        payload = json.dumps({
            "seed": self.seed,
            "generation": self.generation,
            "backend": self.backend,
            "quantize": self.quantize,
            "config": config_description,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Grid execution
    # ------------------------------------------------------------------
    def _task_for(self, point: SweepPoint, num_packets: int,
                  payload_bits_per_packet: int,
                  packet_offset: int = 0) -> _PointTask:
        scenario = self.registry.get(point.scenario)
        return _PointTask(
            point=point,
            scenario=scenario,
            config=self.config,
            generation=scenario.generation or self.generation,
            backend=self.backend,
            quantize=self.quantize,
            num_packets=num_packets,
            payload_bits_per_packet=payload_bits_per_packet,
            seed_entropy=self.seed,
            spawn_key=_point_spawn_key(point, packet_offset))

    def measure_point(self, point: SweepPoint, num_packets: int = 32,
                      payload_bits_per_packet: int = 64,
                      packet_offset: int = 0) -> BERPoint:
        """Measure a single grid point (the unit of work ``repro.runs`` caches).

        ``packet_offset`` names the chunk: offset 0 is bit-exact with
        :meth:`run` on a one-point grid, while a positive offset draws an
        independent stream so escalating a cached measurement from ``n`` to
        ``n + m`` packets simulates only the ``m``-packet tail chunk.
        """
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        require_int(packet_offset, "packet_offset", minimum=0)
        return _run_point(self._task_for(point, num_packets,
                                         payload_bits_per_packet,
                                         packet_offset))

    def run(self, points, num_packets: int = 32,
            payload_bits_per_packet: int = 64,
            on_result=None) -> SweepResult:
        """Measure every grid point and return the collected results.

        ``on_result`` (optional) is called as ``on_result(point,
        measurement)`` for every grid point, in grid order, as results
        become available — the hook result stores use to persist points
        incrementally instead of waiting for the whole grid.
        """
        points = tuple(points)
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        duplicates = [point for point, count in Counter(points).items()
                      if count > 1]
        if duplicates:
            warnings.warn(
                f"sweep grid contains {len(duplicates)} duplicated point(s) "
                f"(e.g. {duplicates[0]}); duplicates share one seed stream "
                "and return identical measurements — use different seeds "
                "(or engines) to replicate a point",
                stacklevel=2)
        tasks = [self._task_for(point, num_packets, payload_bits_per_packet)
                 for point in points]
        entries: list[tuple[SweepPoint, BERPoint]] = []
        if self.max_workers is not None and self.max_workers > 1 \
                and len(tasks) > 1:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                for point, measurement in zip(points,
                                              pool.map(_run_point, tasks)):
                    if on_result is not None:
                        on_result(point, measurement)
                    entries.append((point, measurement))
        else:
            for point, task in zip(points, tasks):
                measurement = _run_point(task)
                if on_result is not None:
                    on_result(point, measurement)
                entries.append((point, measurement))
        return SweepResult(entries=entries)

    def ber_curve(self, ebn0_values_db, scenario: str = "awgn",
                  modulation: str = "bpsk", adc_bits: int | None = None,
                  num_packets: int = 32, payload_bits_per_packet: int = 64,
                  label: str | None = None) -> BERCurve:
        """Sweep Eb/N0 for one environment and return the BER curve."""
        points = sweep_grid(ebn0_values_db, scenarios=(scenario,),
                            modulations=(modulation,), adc_bits=(adc_bits,))
        result = self.run(points, num_packets=num_packets,
                          payload_bits_per_packet=payload_bits_per_packet)
        return result.curve(scenario=scenario, modulation=modulation,
                            adc_bits=adc_bits, label=label)
