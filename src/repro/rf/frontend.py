"""Composed RF front ends for both transceiver generations.

* :class:`Gen1FrontEnd` — the first-generation chip's front end, which the
  paper points out "does not require a down converter": an antenna followed
  by a wideband LNA directly driving the 2 GSPS flash ADC.

* :class:`DirectConversionFrontEnd` — the gen-2 front end of Fig. 3:
  antenna -> LNA -> optional notch filter -> quadrature direct-conversion
  mixer -> I/Q baseband driving the two 5-bit SAR ADCs.

Both classes also expose a *composite impulse response* (antenna + front-end
filtering), supporting the paper's observation that the front-end impulse
response adds to the channel's and must be bounded by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rf.antenna import PlanarEllipticalAntenna
from repro.rf.lna import LNA
from repro.rf.mixer import DirectConversionMixer
from repro.rf.noise import NoiseStage, cascade_noise_figure_db
from repro.rf.notch import AnalogNotchFilter
from repro.rf.oscillator import LocalOscillator
from repro.rf.synthesizer import FrequencySynthesizer
from repro.utils import dsp
from repro.utils.validation import require_positive

__all__ = ["Gen1FrontEnd", "DirectConversionFrontEnd"]


@dataclass
class Gen1FrontEnd:
    """Baseband-pulse front end (no down-conversion): antenna + wideband LNA."""

    antenna: PlanarEllipticalAntenna | None = None
    lna: LNA = field(default_factory=lambda: LNA(gain_db=20.0,
                                                 noise_figure_db=6.0,
                                                 bandwidth_hz=2e9,
                                                 center_frequency_hz=None,
                                                 saturation_v=0.8))

    def process(self, received, sample_rate_hz: float,
                rng: np.random.Generator | None = None) -> np.ndarray:
        """Run a received real waveform through antenna and LNA."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        waveform = np.asarray(received, dtype=float)
        if self.antenna is not None:
            waveform = self.antenna.apply(waveform, sample_rate_hz)
        return self.lna.amplify(waveform, sample_rate_hz, rng=rng)

    def noise_figure_db(self) -> float:
        """Cascade noise figure of the front end."""
        return cascade_noise_figure_db([
            NoiseStage("lna", self.lna.gain_db, self.lna.noise_figure_db),
        ])


@dataclass
class DirectConversionFrontEnd:
    """Gen-2 direct-conversion receive front end (Fig. 3).

    The processing order mirrors the block diagram: antenna -> LNA ->
    (optional) RF notch -> quadrature mixer -> complex baseband out.
    The synthesizer selects which of the 14 sub-bands the LO sits on.
    """

    synthesizer: FrequencySynthesizer = field(default_factory=FrequencySynthesizer)
    antenna: PlanarEllipticalAntenna | None = None
    lna: LNA = field(default_factory=lambda: LNA(gain_db=18.0,
                                                 noise_figure_db=5.5,
                                                 bandwidth_hz=None,
                                                 saturation_v=0.6))
    mixer: DirectConversionMixer = field(default_factory=DirectConversionMixer)
    notch: AnalogNotchFilter | None = None
    baseband_bandwidth_hz: float = 250e6

    def __post_init__(self) -> None:
        require_positive(self.baseband_bandwidth_hz, "baseband_bandwidth_hz")

    # ------------------------------------------------------------------
    # Passband receive path
    # ------------------------------------------------------------------
    def receive_passband(self, received, sample_rate_hz: float,
                         rng: np.random.Generator | None = None,
                         lo: LocalOscillator | None = None) -> np.ndarray:
        """Full passband receive path: antenna, LNA, mixer to complex baseband."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        waveform = np.asarray(received, dtype=float)
        if rng is None:
            rng = np.random.default_rng()
        if self.antenna is not None:
            waveform = self.antenna.apply(waveform, sample_rate_hz)
        waveform = self.lna.amplify(waveform, sample_rate_hz, rng=rng)
        if lo is None:
            lo = self.synthesizer.local_oscillator(rng=rng)
        baseband = self.mixer.downconvert(
            waveform, sample_rate_hz, lo,
            lowpass_bandwidth_hz=self.baseband_bandwidth_hz, rng=rng)
        if self.notch is not None and self.notch.enabled:
            baseband = self.notch.apply(baseband, sample_rate_hz)
        return baseband

    # ------------------------------------------------------------------
    # Complex-baseband equivalent receive path (used by link simulations)
    # ------------------------------------------------------------------
    def receive_baseband(self, baseband, sample_rate_hz: float,
                         carrier_frequency_offset_hz: float = 0.0,
                         phase_offset_rad: float = 0.0,
                         rng: np.random.Generator | None = None) -> np.ndarray:
        """Baseband-equivalent receive path (impairments without passband cost).

        The LNA's band-limiting and soft compression, the mixer impairments
        (I/Q imbalance, DC offset, CFO, phase rotation), and the optional
        notch filter are all applied at complex baseband.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        x = np.asarray(baseband, dtype=complex)
        if rng is None:
            rng = np.random.default_rng()
        x = self.lna.amplify(x, sample_rate_hz, rng=rng, add_noise=False)
        x = self.mixer.apply_baseband_impairments(
            x, sample_rate_hz,
            carrier_frequency_offset_hz=carrier_frequency_offset_hz,
            phase_offset_rad=phase_offset_rad, rng=rng)
        cutoff = min(self.baseband_bandwidth_hz, 0.45 * sample_rate_hz)
        x = dsp.lowpass_filter(x, cutoff, sample_rate_hz)
        if self.notch is not None and self.notch.enabled:
            x = self.notch.apply(x, sample_rate_hz)
        return x

    # ------------------------------------------------------------------
    # Characterization
    # ------------------------------------------------------------------
    def noise_figure_db(self) -> float:
        """Friis cascade noise figure of LNA + mixer."""
        stages = [
            NoiseStage("lna", self.lna.gain_db, self.lna.noise_figure_db),
            NoiseStage("mixer", self.mixer.conversion_gain_db, 10.0),
        ]
        return cascade_noise_figure_db(stages)

    def composite_impulse_response(self, sample_rate_hz: float,
                                   duration_s: float = 8e-9) -> np.ndarray:
        """Impulse response of antenna + baseband filtering.

        This is the term the paper says adds to the channel impulse response
        and must stay within what the receiver is designed to absorb.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        num_samples = max(int(round(duration_s * sample_rate_hz)), 16)
        impulse = np.zeros(num_samples, dtype=complex)
        impulse[0] = 1.0
        response = dsp.lowpass_filter(
            impulse, min(self.baseband_bandwidth_hz, 0.45 * sample_rate_hz),
            sample_rate_hz)
        if self.antenna is not None:
            antenna_ir = self.antenna.impulse_response(sample_rate_hz,
                                                       duration_s=duration_s)
            response = np.convolve(response, antenna_ir,
                                   mode="full")[:num_samples]
        return response

    def impulse_response_duration_s(self, sample_rate_hz: float,
                                    energy_fraction: float = 0.99) -> float:
        """Duration containing ``energy_fraction`` of the composite IR energy."""
        h = self.composite_impulse_response(sample_rate_hz)
        energy = np.cumsum(np.abs(h) ** 2)
        if energy[-1] <= 0:
            return 0.0
        energy /= energy[-1]
        idx = int(np.searchsorted(energy, energy_fraction))
        return (idx + 1) / sample_rate_hz
