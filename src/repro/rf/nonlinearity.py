"""Memoryless nonlinearity models (compression, IIP3) for RF blocks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.db import db_to_amplitude

__all__ = ["RappNonlinearity", "polynomial_nonlinearity", "iip3_to_coefficient"]


def iip3_to_coefficient(gain_linear: float, iip3_vpeak: float) -> float:
    """Third-order coefficient of ``y = g x - c x^3`` for a given input IP3.

    For a memoryless cubic nonlinearity the input-referred third-order
    intercept amplitude satisfies ``c = 4 g / (3 A_ip3^2)``.
    """
    if iip3_vpeak <= 0:
        raise ValueError("iip3_vpeak must be positive")
    return 4.0 * gain_linear / (3.0 * iip3_vpeak ** 2)


def polynomial_nonlinearity(x, gain_linear: float, iip3_vpeak: float) -> np.ndarray:
    """Apply a third-order memoryless nonlinearity ``y = g x - c x^3``.

    Works on real signals (passband) or complex envelopes (where the cubic
    term uses ``|x|^2 x``, the standard baseband-equivalent form).
    """
    x = np.asarray(x)
    c = iip3_to_coefficient(gain_linear, iip3_vpeak)
    if np.iscomplexobj(x):
        return gain_linear * x - c * (np.abs(x) ** 2) * x
    return gain_linear * x - c * x ** 3


@dataclass(frozen=True)
class RappNonlinearity:
    """Rapp (solid-state amplifier) soft-limiting model.

    ``y = g x / (1 + (g |x| / v_sat)^(2p))^(1/(2p))`` — linear for small
    inputs, saturating smoothly at ``v_sat``.  ``smoothness`` (p) of 2-3 is
    typical of CMOS amplifiers.
    """

    gain_db: float = 0.0
    saturation_v: float = 1.0
    smoothness: float = 2.0

    def __post_init__(self) -> None:
        if self.saturation_v <= 0:
            raise ValueError("saturation_v must be positive")
        if self.smoothness <= 0:
            raise ValueError("smoothness must be positive")

    @property
    def gain_linear(self) -> float:
        return float(db_to_amplitude(self.gain_db))

    def apply(self, x) -> np.ndarray:
        """Apply the soft limiter to a real or complex signal."""
        x = np.asarray(x)
        amplified = self.gain_linear * x
        magnitude = np.abs(amplified)
        p = self.smoothness
        denom = (1.0 + (magnitude / self.saturation_v) ** (2.0 * p)) ** (1.0 / (2.0 * p))
        return amplified / denom

    def output_1db_compression_v(self) -> float:
        """Output amplitude at which gain has compressed by 1 dB (numeric)."""
        test_inputs = np.linspace(1e-6, 10.0 * self.saturation_v / self.gain_linear,
                                  20000)
        outputs = np.abs(self.apply(test_inputs))
        small_signal = self.gain_linear * test_inputs
        compression_db = 20.0 * np.log10(np.maximum(outputs, 1e-300)
                                         / np.maximum(small_signal, 1e-300))
        below = np.where(compression_db <= -1.0)[0]
        if below.size == 0:
            return float(outputs[-1])
        return float(outputs[below[0]])
