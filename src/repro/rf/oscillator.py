"""Local-oscillator and PLL models.

Two things in the paper need an oscillator model:

* the gen-2 direct-conversion receiver mixes with a quadrature LO produced
  by a fast-hopping frequency synthesizer (14 sub-bands), and
* both generations use a PLL/DLL to time the ADC and the digital back end.

The :class:`LocalOscillator` produces quadrature carrier samples with
frequency offset, phase offset, and optional phase noise (a random-walk
model parameterized by its -3 dB linewidth, adequate for studying how phase
noise degrades the coherent RAKE combining).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import dsp
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["LocalOscillator", "PhaseLockedLoop"]


@dataclass
class LocalOscillator:
    """Quadrature LO with static offsets and random-walk phase noise.

    Attributes
    ----------
    frequency_hz:
        Nominal LO frequency.
    frequency_offset_hz:
        Static frequency error (crystal tolerance, e.g. +-40 ppm).
    phase_offset_rad:
        Static phase error.
    linewidth_hz:
        Lorentzian linewidth of the random-walk (Wiener) phase-noise
        process; 0 disables phase noise.
    """

    frequency_hz: float
    frequency_offset_hz: float = 0.0
    phase_offset_rad: float = 0.0
    linewidth_hz: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.frequency_hz, "frequency_hz")
        require_non_negative(self.linewidth_hz, "linewidth_hz")

    def phase_trajectory(self, num_samples: int, sample_rate_hz: float,
                         rng: np.random.Generator | None = None) -> np.ndarray:
        """Instantaneous phase of the LO at each sample time."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        t = dsp.time_vector(num_samples, sample_rate_hz)
        phase = (2.0 * np.pi * (self.frequency_hz + self.frequency_offset_hz) * t
                 + self.phase_offset_rad)
        if self.linewidth_hz > 0:
            if rng is None:
                rng = np.random.default_rng()
            # Wiener phase noise: variance increment 2*pi*linewidth*dt per step.
            increment_std = np.sqrt(2.0 * np.pi * self.linewidth_hz / sample_rate_hz)
            random_walk = np.cumsum(increment_std
                                    * rng.standard_normal(num_samples))
            phase = phase + random_walk
        return phase

    def complex_carrier(self, num_samples: int, sample_rate_hz: float,
                        rng: np.random.Generator | None = None) -> np.ndarray:
        """Complex exponential ``exp(j*phase(t))`` of the LO."""
        phase = self.phase_trajectory(num_samples, sample_rate_hz, rng=rng)
        return np.exp(1j * phase)

    def quadrature_outputs(self, num_samples: int, sample_rate_hz: float,
                           iq_phase_error_rad: float = 0.0,
                           iq_gain_error: float = 0.0,
                           rng: np.random.Generator | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
        """In-phase and quadrature LO waveforms including I/Q imbalance.

        Returns ``(lo_i, lo_q)`` where ideally ``lo_i = cos`` and
        ``lo_q = -sin``; gain and phase errors skew the quadrature path.
        """
        phase = self.phase_trajectory(num_samples, sample_rate_hz, rng=rng)
        lo_i = np.cos(phase)
        lo_q = -(1.0 + iq_gain_error) * np.sin(phase + iq_phase_error_rad)
        return lo_i, lo_q


@dataclass
class PhaseLockedLoop:
    """Simple second-order PLL settling/jitter model for clock generation.

    The digital back ends of both chips are clocked from an on-chip PLL;
    for system simulation what matters is the settling time (contributes to
    turn-on latency) and the RMS jitter it passes to the ADC sampling clock.
    """

    reference_frequency_hz: float
    multiplication_factor: int
    loop_bandwidth_hz: float = 1e6
    damping: float = 0.707
    rms_jitter_s: float = 1e-12

    def __post_init__(self) -> None:
        require_positive(self.reference_frequency_hz, "reference_frequency_hz")
        if self.multiplication_factor < 1:
            raise ValueError("multiplication_factor must be >= 1")
        require_positive(self.loop_bandwidth_hz, "loop_bandwidth_hz")
        require_positive(self.damping, "damping")
        require_non_negative(self.rms_jitter_s, "rms_jitter_s")

    @property
    def output_frequency_hz(self) -> float:
        """Synthesized output frequency."""
        return self.reference_frequency_hz * self.multiplication_factor

    def settling_time_s(self, tolerance: float = 1e-3) -> float:
        """Time for the frequency error to settle within ``tolerance`` (fractional).

        Classic second-order approximation: ``t ~= -ln(tol) / (zeta * wn)``.
        """
        if not 0 < tolerance < 1:
            raise ValueError("tolerance must be in (0, 1)")
        natural_frequency = 2.0 * np.pi * self.loop_bandwidth_hz
        return float(-np.log(tolerance) / (self.damping * natural_frequency))

    def sample_clock_times(self, num_samples: int,
                           rng: np.random.Generator | None = None) -> np.ndarray:
        """Nominal sample instants of the output clock with added jitter."""
        if rng is None:
            rng = np.random.default_rng()
        period = 1.0 / self.output_frequency_hz
        nominal = np.arange(num_samples) * period
        jitter = rng.normal(0.0, self.rms_jitter_s, size=num_samples)
        return nominal + jitter
