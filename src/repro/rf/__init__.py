"""RF front-end models: antenna, LNA, mixer, LO/synthesizer, notch, cascades."""

from repro.rf.antenna import PlanarEllipticalAntenna
from repro.rf.frontend import DirectConversionFrontEnd, Gen1FrontEnd
from repro.rf.lna import LNA
from repro.rf.mixer import DirectConversionMixer
from repro.rf.noise import (
    NoiseStage,
    cascade_gain_db,
    cascade_noise_figure_db,
    thermal_noise_voltage_std,
)
from repro.rf.nonlinearity import (
    RappNonlinearity,
    iip3_to_coefficient,
    polynomial_nonlinearity,
)
from repro.rf.notch import AnalogNotchFilter
from repro.rf.oscillator import LocalOscillator, PhaseLockedLoop
from repro.rf.synthesizer import FrequencySynthesizer, HoppingSequence

__all__ = [
    "PlanarEllipticalAntenna",
    "DirectConversionFrontEnd",
    "Gen1FrontEnd",
    "LNA",
    "DirectConversionMixer",
    "NoiseStage",
    "cascade_gain_db",
    "cascade_noise_figure_db",
    "thermal_noise_voltage_std",
    "RappNonlinearity",
    "iip3_to_coefficient",
    "polynomial_nonlinearity",
    "AnalogNotchFilter",
    "LocalOscillator",
    "PhaseLockedLoop",
    "FrequencySynthesizer",
    "HoppingSequence",
]
