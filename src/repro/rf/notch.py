"""Tunable analog notch filter for narrowband-interferer rejection.

Fig. 3's receive chain includes a notch filter in the RF front end whose
centre frequency "may be used" from the digital back end's interferer
frequency estimate.  We model it as a second-order IIR notch applied at
complex baseband (frequency specified as an offset from the sub-band
centre) or at passband (absolute frequency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.utils.validation import require_positive

__all__ = ["AnalogNotchFilter"]


@dataclass
class AnalogNotchFilter:
    """Second-order tunable notch.

    Attributes
    ----------
    notch_frequency_hz:
        Centre frequency of the notch.  For complex-baseband operation this
        may be negative (below the sub-band centre).
    quality_factor:
        Q of the notch; higher Q means a narrower notch and less damage to
        the wanted UWB signal.
    enabled:
        When False, :meth:`apply` passes the signal through unchanged (the
        back end only engages the notch when an interferer is detected).
    """

    notch_frequency_hz: float = 0.0
    quality_factor: float = 20.0
    enabled: bool = True

    def __post_init__(self) -> None:
        require_positive(self.quality_factor, "quality_factor")

    def tune(self, notch_frequency_hz: float) -> None:
        """Re-tune the notch centre frequency (the back-end control path)."""
        self.notch_frequency_hz = float(notch_frequency_hz)

    def _design(self, sample_rate_hz: float) -> tuple[np.ndarray, np.ndarray]:
        """Design the real-coefficient notch at |notch_frequency_hz|."""
        nyquist = sample_rate_hz / 2.0
        freq = abs(self.notch_frequency_hz)
        if freq <= 0 or freq >= nyquist:
            raise ValueError(
                f"notch frequency {self.notch_frequency_hz} Hz must have "
                f"magnitude in (0, {nyquist}) Hz")
        return sp_signal.iirnotch(freq, self.quality_factor, fs=sample_rate_hz)

    def frequency_response(self, frequencies_hz, sample_rate_hz: float) -> np.ndarray:
        """Complex response at the requested (non-negative) frequencies."""
        b, a = self._design(sample_rate_hz)
        _, response = sp_signal.freqz(b, a, worN=np.atleast_1d(frequencies_hz),
                                      fs=sample_rate_hz)
        return response

    def apply(self, waveform, sample_rate_hz: float) -> np.ndarray:
        """Filter a waveform through the notch.

        Real input uses the real-coefficient notch directly.  Complex
        baseband input is frequency-shifted so the (possibly negative)
        notch frequency lands on a positive design frequency, filtered, and
        shifted back — equivalent to a complex-coefficient notch centred at
        ``notch_frequency_hz``.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        waveform = np.asarray(waveform)
        if not self.enabled:
            return waveform.copy()
        if not np.iscomplexobj(waveform):
            b, a = self._design(sample_rate_hz)
            return sp_signal.filtfilt(b, a, waveform)

        # Complex baseband: shift the notch frequency to +fs/4, apply a real
        # notch there to both quadratures of the shifted signal, shift back.
        target = sample_rate_hz / 4.0
        shift = target - self.notch_frequency_hz
        n = np.arange(waveform.size)
        shifter = np.exp(1j * 2.0 * np.pi * shift * n / sample_rate_hz)
        shifted = waveform * shifter
        notch_at_target = AnalogNotchFilter(notch_frequency_hz=target,
                                            quality_factor=self.quality_factor)
        b, a = notch_at_target._design(sample_rate_hz)
        filtered = (sp_signal.filtfilt(b, a, shifted.real)
                    + 1j * sp_signal.filtfilt(b, a, shifted.imag))
        return filtered * np.conj(shifter)

    def rejection_at_db(self, frequency_hz: float, sample_rate_hz: float) -> float:
        """Attenuation (positive dB) the notch provides at ``frequency_hz``.

        Evaluated on an equivalent real notch centred at fs/4, probed at the
        same offset from the notch centre as ``frequency_hz`` is from
        ``notch_frequency_hz``; this matches how :meth:`apply` implements the
        complex-baseband notch.
        """
        offset = frequency_hz - self.notch_frequency_hz
        reference = AnalogNotchFilter(notch_frequency_hz=sample_rate_hz / 4.0,
                                      quality_factor=self.quality_factor)
        probe = sample_rate_hz / 4.0 + offset
        probe = min(max(probe, 1.0), 0.499 * sample_rate_hz)
        response = reference.frequency_response(np.array([probe]), sample_rate_hz)
        magnitude = float(np.abs(response[0]))
        if magnitude <= 0:
            return float("inf")
        return float(-20.0 * np.log10(magnitude))
