"""Direct-conversion quadrature mixer model.

The defining block of the gen-2 receiver ("the RF front end uses a direct
conversion architecture").  Direct conversion brings its classic
impairments, all of which the model exposes:

* I/Q gain and phase imbalance (image leakage),
* DC offset (LO self-mixing),
* flicker (1/f) noise near DC,
* carrier frequency offset and phase noise inherited from the LO.

The mixer consumes a *real passband* waveform and an :class:`LocalOscillator`
and produces the complex baseband signal the SAR ADCs digitize.  For long
link simulations the library usually stays at complex baseband and applies
:meth:`DirectConversionMixer.apply_baseband_impairments` instead, which adds
the same impairments without the cost of passband sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.oscillator import LocalOscillator
from repro.utils import dsp
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["DirectConversionMixer"]


@dataclass
class DirectConversionMixer:
    """Quadrature down-converter with direct-conversion impairments.

    Attributes
    ----------
    iq_gain_imbalance_db:
        Gain mismatch between the I and Q paths.
    iq_phase_imbalance_deg:
        Quadrature phase error.
    dc_offset_i, dc_offset_q:
        Static DC offsets added to each path (LO self-mixing).
    flicker_corner_hz:
        Corner frequency of added 1/f noise; 0 disables it.
    flicker_amplitude:
        RMS amplitude of the flicker-noise process at the corner frequency.
    conversion_gain_db:
        Voltage conversion gain of the mixer.
    """

    iq_gain_imbalance_db: float = 0.0
    iq_phase_imbalance_deg: float = 0.0
    dc_offset_i: float = 0.0
    dc_offset_q: float = 0.0
    flicker_corner_hz: float = 0.0
    flicker_amplitude: float = 0.0
    conversion_gain_db: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.flicker_corner_hz, "flicker_corner_hz")
        require_non_negative(self.flicker_amplitude, "flicker_amplitude")

    @property
    def conversion_gain_linear(self) -> float:
        return float(10.0 ** (self.conversion_gain_db / 20.0))

    def _iq_errors(self) -> tuple[float, float]:
        gain_error = 10.0 ** (self.iq_gain_imbalance_db / 20.0) - 1.0
        phase_error = np.deg2rad(self.iq_phase_imbalance_deg)
        return gain_error, phase_error

    def _flicker_noise(self, num_samples: int, sample_rate_hz: float,
                       rng: np.random.Generator) -> np.ndarray:
        """Complex 1/f noise synthesized by spectral shaping of white noise."""
        if self.flicker_corner_hz <= 0 or self.flicker_amplitude <= 0:
            return np.zeros(num_samples, dtype=complex)
        white = (rng.standard_normal(num_samples)
                 + 1j * rng.standard_normal(num_samples))
        spectrum = np.fft.fft(white)
        freqs = np.fft.fftfreq(num_samples, d=1.0 / sample_rate_hz)
        with np.errstate(divide="ignore"):
            shaping = np.sqrt(self.flicker_corner_hz / np.maximum(np.abs(freqs), 1.0))
        shaping[0] = shaping[1] if num_samples > 1 else 1.0
        shaped = np.fft.ifft(spectrum * shaping)
        power = np.mean(np.abs(shaped) ** 2)
        if power > 0:
            shaped *= self.flicker_amplitude / np.sqrt(power)
        return shaped

    # ------------------------------------------------------------------
    # Passband path
    # ------------------------------------------------------------------
    def downconvert(self, passband, sample_rate_hz: float,
                    lo: LocalOscillator,
                    lowpass_bandwidth_hz: float | None = None,
                    rng: np.random.Generator | None = None) -> np.ndarray:
        """Mix a real passband waveform down to complex baseband.

        The quadrature LO comes from ``lo`` (including its frequency offset
        and phase noise); the mixer applies its own I/Q imbalance, DC
        offsets, flicker noise, and conversion gain, then low-pass filters
        to ``lowpass_bandwidth_hz`` (defaults to a quarter of the sampling
        rate) to reject the double-frequency product.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        passband = np.asarray(passband, dtype=float)
        if rng is None:
            rng = np.random.default_rng()
        gain_error, phase_error = self._iq_errors()
        lo_i, lo_q = lo.quadrature_outputs(
            passband.size, sample_rate_hz,
            iq_phase_error_rad=phase_error,
            iq_gain_error=gain_error,
            rng=rng,
        )
        i_path = 2.0 * passband * lo_i
        q_path = 2.0 * passband * lo_q
        baseband = (i_path + 1j * q_path) * self.conversion_gain_linear
        if lowpass_bandwidth_hz is None:
            lowpass_bandwidth_hz = sample_rate_hz / 4.0
        cutoff = min(lowpass_bandwidth_hz, 0.45 * sample_rate_hz)
        baseband = dsp.lowpass_filter(baseband, cutoff, sample_rate_hz)
        baseband = baseband + (self.dc_offset_i + 1j * self.dc_offset_q)
        baseband = baseband + self._flicker_noise(passband.size,
                                                  sample_rate_hz, rng)
        return baseband

    # ------------------------------------------------------------------
    # Baseband-equivalent path
    # ------------------------------------------------------------------
    def apply_baseband_impairments(self, baseband, sample_rate_hz: float,
                                   carrier_frequency_offset_hz: float = 0.0,
                                   phase_offset_rad: float = 0.0,
                                   rng: np.random.Generator | None = None
                                   ) -> np.ndarray:
        """Apply the mixer's impairments directly to a complex baseband signal.

        Equivalent to up-converting, mixing down with an offset LO, and
        re-filtering, but performed analytically: CFO/phase rotation, I/Q
        imbalance (image term), DC offsets, flicker noise, conversion gain.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        x = np.asarray(baseband, dtype=complex)
        if rng is None:
            rng = np.random.default_rng()
        t = dsp.time_vector(x.size, sample_rate_hz)
        rotated = x * np.exp(1j * (2.0 * np.pi * carrier_frequency_offset_hz * t
                                   + phase_offset_rad))
        gain_error, phase_error = self._iq_errors()
        # Standard image model: y = alpha*x + beta*conj(x).
        alpha = 0.5 * (1.0 + (1.0 + gain_error) * np.exp(-1j * phase_error))
        beta = 0.5 * (1.0 - (1.0 + gain_error) * np.exp(1j * phase_error))
        impaired = alpha * rotated + beta * np.conj(rotated)
        impaired = impaired * self.conversion_gain_linear
        impaired = impaired + (self.dc_offset_i + 1j * self.dc_offset_q)
        impaired = impaired + self._flicker_noise(x.size, sample_rate_hz, rng)
        return impaired

    def image_rejection_ratio_db(self) -> float:
        """Image-rejection ratio implied by the configured I/Q imbalance."""
        gain_error, phase_error = self._iq_errors()
        alpha = 0.5 * (1.0 + (1.0 + gain_error) * np.exp(-1j * phase_error))
        beta = 0.5 * (1.0 - (1.0 + gain_error) * np.exp(1j * phase_error))
        if abs(beta) == 0:
            return float("inf")
        return float(20.0 * np.log10(abs(alpha) / abs(beta)))
