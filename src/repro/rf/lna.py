"""Wideband low-noise amplifier model.

The LNA is the first active block of the gen-2 receiver (Fig. 3).  The model
captures the properties the paper's system considerations call out: gain,
noise figure over > 500 MHz of bandwidth, linearity (soft compression), and
a finite band-pass impulse response that adds to the composite channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.noise import thermal_noise_voltage_std
from repro.rf.nonlinearity import RappNonlinearity
from repro.utils import dsp
from repro.utils.db import db_to_amplitude
from repro.utils.validation import require_positive

__all__ = ["LNA"]


@dataclass
class LNA:
    """Behavioural wideband LNA.

    Attributes
    ----------
    gain_db:
        Small-signal voltage gain.
    noise_figure_db:
        Noise figure referred to a 50-ohm source.
    bandwidth_hz:
        Equivalent noise bandwidth used to size the added noise and the
        band-limiting filter (None disables band-limiting).
    center_frequency_hz:
        Pass-band centre when band-limiting a real passband signal; ``None``
        means the input is a complex baseband signal centred at 0 Hz.
    saturation_v:
        Output voltage where the amplifier soft-limits.
    """

    gain_db: float = 15.0
    noise_figure_db: float = 5.0
    bandwidth_hz: float | None = None
    center_frequency_hz: float | None = None
    saturation_v: float = 0.5
    impedance_ohm: float = 50.0

    def __post_init__(self) -> None:
        if self.bandwidth_hz is not None:
            require_positive(self.bandwidth_hz, "bandwidth_hz")
        require_positive(self.saturation_v, "saturation_v")
        self._limiter = RappNonlinearity(gain_db=self.gain_db,
                                         saturation_v=self.saturation_v)

    @property
    def gain_linear(self) -> float:
        """Small-signal voltage gain (linear)."""
        return float(db_to_amplitude(self.gain_db))

    def input_noise_std(self) -> float:
        """Input-referred RMS noise voltage over the configured bandwidth."""
        if self.bandwidth_hz is None:
            return 0.0
        return thermal_noise_voltage_std(self.bandwidth_hz,
                                         self.noise_figure_db,
                                         self.impedance_ohm)

    def amplify(self, waveform, sample_rate_hz: float,
                rng: np.random.Generator | None = None,
                add_noise: bool = True) -> np.ndarray:
        """Amplify a waveform, adding noise and applying compression.

        The added noise is the LNA's own contribution (its excess over an
        ideal noiseless amplifier is set by the noise figure); source noise
        is the responsibility of the channel model.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        waveform = np.asarray(waveform)
        if rng is None:
            rng = np.random.default_rng()

        noisy = waveform
        if add_noise and self.bandwidth_hz is not None:
            std = self.input_noise_std()
            if np.iscomplexobj(waveform):
                scale = std / np.sqrt(2.0)
                noise = (rng.standard_normal(waveform.shape)
                         + 1j * rng.standard_normal(waveform.shape)) * scale
            else:
                noise = std * rng.standard_normal(waveform.shape)
            noisy = waveform + noise

        amplified = self._limiter.apply(noisy)

        if self.bandwidth_hz is not None:
            nyquist = sample_rate_hz / 2.0
            if self.center_frequency_hz is not None:
                low = max(self.center_frequency_hz - self.bandwidth_hz / 2.0, 1.0)
                high = min(self.center_frequency_hz + self.bandwidth_hz / 2.0,
                           nyquist * 0.999)
                if low < high:
                    amplified = dsp.bandpass_filter(amplified, low, high,
                                                    sample_rate_hz)
            else:
                cutoff = min(self.bandwidth_hz / 2.0, nyquist * 0.999)
                amplified = dsp.lowpass_filter(amplified, cutoff, sample_rate_hz)
        return amplified
