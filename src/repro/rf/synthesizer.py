"""Fast-hopping pulse frequency synthesizer for the 14-channel band plan.

Fig. 3's transmitter contains a "Pulse Frequency Synthesizer": the block that
picks which of the 14 sub-band centre frequencies the next pulse is
up-converted to.  The model tracks the selected channel, enforces the band
plan, and accounts for a finite hop (settling) time, which matters when the
system hops between sub-bands on a per-packet or per-pulse basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import BandPlan, DEFAULT_BAND_PLAN
from repro.rf.oscillator import LocalOscillator
from repro.utils.validation import require_non_negative

__all__ = ["FrequencySynthesizer", "HoppingSequence"]


@dataclass
class FrequencySynthesizer:
    """Channel-select synthesizer over the paper's 14-sub-band plan.

    Attributes
    ----------
    band_plan:
        The channelization (defaults to the paper's 14 x 500 MHz plan).
    hop_time_s:
        Settling time when changing channels; during this interval the LO is
        considered unusable.
    frequency_tolerance_ppm:
        Static frequency error applied to the generated LO.
    linewidth_hz:
        Phase-noise linewidth passed to the generated LO.
    """

    band_plan: BandPlan = field(default_factory=lambda: DEFAULT_BAND_PLAN)
    hop_time_s: float = 9.5e-9
    frequency_tolerance_ppm: float = 20.0
    linewidth_hz: float = 0.0
    initial_channel: int = 0

    def __post_init__(self) -> None:
        require_non_negative(self.hop_time_s, "hop_time_s")
        require_non_negative(self.frequency_tolerance_ppm,
                             "frequency_tolerance_ppm")
        self._channel = None
        self.select_channel(self.initial_channel)

    @property
    def current_channel(self) -> int:
        """Currently selected channel index."""
        return self._channel

    @property
    def current_frequency_hz(self) -> float:
        """Centre frequency of the selected channel."""
        return self.band_plan.center_frequency(self._channel)

    def select_channel(self, channel: int) -> float:
        """Switch to ``channel`` and return the time penalty incurred.

        Selecting the already-active channel costs nothing; any other
        channel costs ``hop_time_s``.
        """
        if not 0 <= channel < self.band_plan.num_channels:
            raise ValueError(
                f"channel must be in [0, {self.band_plan.num_channels})")
        penalty = 0.0 if self._channel == channel else self.hop_time_s
        if self._channel is None:
            penalty = 0.0
        self._channel = int(channel)
        return penalty

    def local_oscillator(self, rng: np.random.Generator | None = None
                         ) -> LocalOscillator:
        """Return an LO model at the selected channel's centre frequency.

        The static frequency error is drawn uniformly inside the tolerance
        when an ``rng`` is supplied, otherwise it is zero.
        """
        frequency = self.current_frequency_hz
        offset = 0.0
        if rng is not None and self.frequency_tolerance_ppm > 0:
            max_offset = frequency * self.frequency_tolerance_ppm * 1e-6
            offset = float(rng.uniform(-max_offset, max_offset))
        return LocalOscillator(frequency_hz=frequency,
                               frequency_offset_hz=offset,
                               linewidth_hz=self.linewidth_hz)

    def hop_sequence_duration_s(self, sequence) -> float:
        """Total settling time spent executing a hop sequence."""
        total = 0.0
        for channel in sequence:
            total += self.select_channel(int(channel))
        return total


@dataclass(frozen=True)
class HoppingSequence:
    """A deterministic channel-hopping pattern.

    Frequency hopping over the sub-bands spreads the transmitted energy
    across the full 7 GHz, which both smooths the long-term PSD (helping the
    FCC mask) and provides frequency diversity against narrowband
    interferers parked in one sub-band.
    """

    channels: tuple[int, ...]
    band_plan: BandPlan = field(default_factory=lambda: DEFAULT_BAND_PLAN)

    def __post_init__(self) -> None:
        if len(self.channels) == 0:
            raise ValueError("hopping sequence must not be empty")
        for channel in self.channels:
            if not 0 <= channel < self.band_plan.num_channels:
                raise ValueError(f"channel {channel} outside the band plan")

    def channel_for_symbol(self, symbol_index: int) -> int:
        """Channel used for the ``symbol_index``-th symbol (cyclic)."""
        return self.channels[symbol_index % len(self.channels)]

    def frequency_for_symbol(self, symbol_index: int) -> float:
        """Centre frequency for the ``symbol_index``-th symbol."""
        return self.band_plan.center_frequency(
            self.channel_for_symbol(symbol_index))

    @classmethod
    def round_robin(cls, num_channels: int | None = None,
                    band_plan: BandPlan | None = None) -> "HoppingSequence":
        """A simple 0,1,2,...,N-1 hopping pattern."""
        plan = band_plan if band_plan is not None else DEFAULT_BAND_PLAN
        count = num_channels if num_channels is not None else plan.num_channels
        return cls(channels=tuple(range(count)), band_plan=plan)

    @classmethod
    def random(cls, length: int, rng: np.random.Generator | None = None,
               band_plan: BandPlan | None = None) -> "HoppingSequence":
        """A random hopping pattern of the given length."""
        if length < 1:
            raise ValueError("length must be >= 1")
        plan = band_plan if band_plan is not None else DEFAULT_BAND_PLAN
        if rng is None:
            rng = np.random.default_rng()
        channels = tuple(int(c) for c in
                         rng.integers(0, plan.num_channels, size=length))
        return cls(channels=channels, band_plan=plan)
