"""Thermal noise and noise-figure bookkeeping for the RF front end.

The paper requires the RF front end to "meet the specifications on noise
figure and linearity over a bandwidth larger than 500 MHz".  These helpers
compute input-referred noise for a block or cascade and generate the
corresponding sample-domain noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, ROOM_TEMPERATURE_K
from repro.utils.db import db_to_linear, linear_to_db
from repro.utils.validation import require_positive

__all__ = [
    "thermal_noise_voltage_std",
    "cascade_noise_figure_db",
    "NoiseStage",
    "cascade_gain_db",
]


def thermal_noise_voltage_std(bandwidth_hz: float,
                              noise_figure_db: float = 0.0,
                              impedance_ohm: float = 50.0,
                              temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """RMS thermal-noise voltage in ``bandwidth_hz`` across ``impedance_ohm``.

    Includes the excess noise implied by ``noise_figure_db``.
    """
    require_positive(bandwidth_hz, "bandwidth_hz")
    require_positive(impedance_ohm, "impedance_ohm")
    noise_power_w = (BOLTZMANN * temperature_k * bandwidth_hz
                     * db_to_linear(noise_figure_db))
    return float(np.sqrt(noise_power_w * impedance_ohm))


@dataclass(frozen=True)
class NoiseStage:
    """One stage of an RF cascade: gain and noise figure."""

    name: str
    gain_db: float
    noise_figure_db: float

    def __post_init__(self) -> None:
        if self.noise_figure_db < 0:
            raise ValueError("noise_figure_db must be >= 0")


def cascade_noise_figure_db(stages: list[NoiseStage] | tuple[NoiseStage, ...]) -> float:
    """Friis cascade noise figure of an ordered list of stages."""
    if len(stages) == 0:
        raise ValueError("need at least one stage")
    total_factor = db_to_linear(stages[0].noise_figure_db)
    cumulative_gain = db_to_linear(stages[0].gain_db)
    for stage in stages[1:]:
        factor = db_to_linear(stage.noise_figure_db)
        total_factor += (factor - 1.0) / cumulative_gain
        cumulative_gain *= db_to_linear(stage.gain_db)
    return float(linear_to_db(total_factor))


def cascade_gain_db(stages: list[NoiseStage] | tuple[NoiseStage, ...]) -> float:
    """Total gain of an ordered list of stages."""
    return float(sum(stage.gain_db for stage in stages))
