"""Behavioural model of the planar elliptical UWB antenna (Fig. 2).

The paper's second-generation system uses an electrically small planar
elliptical antenna of 4.2 cm x 2.7 cm covering 3.1-10.6 GHz (reference [3]
of the paper).  What matters to the transceiver is the antenna's
contribution to the composite impulse response: the paper notes that "the
impulse responses of both the antenna and the RF front-end add to that of
the channel".

We model the antenna as a linear time-invariant two-port with:

* a high-pass roll-off below its first resonance (set by the ellipse's
  major dimension — an electrically small antenna radiates poorly below the
  frequency where its length is about a quarter wavelength),
* gentle ripple across the pass band (standing-wave mismatch),
* a mild group-delay slope (dispersion) that smears the pulse by a few
  hundred picoseconds, and
* a matching return-loss curve derived from the same resonance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ANTENNA_LENGTH_M, ANTENNA_WIDTH_M, SPEED_OF_LIGHT
from repro.utils.db import linear_to_db
from repro.utils.validation import require_positive

__all__ = ["PlanarEllipticalAntenna"]


@dataclass
class PlanarEllipticalAntenna:
    """Parametric model of the paper's planar elliptical UWB antenna.

    Attributes
    ----------
    length_m, width_m:
        Physical dimensions of the ellipse (defaults are the paper's
        4.2 cm x 2.7 cm).
    ripple_db:
        Peak-to-peak gain ripple across the pass band.
    dispersion_ps_per_ghz:
        Group-delay slope modelling the antenna's frequency-dependent phase
        centre.
    nominal_gain_dbi:
        Boresight gain in the pass band.
    """

    length_m: float = ANTENNA_LENGTH_M
    width_m: float = ANTENNA_WIDTH_M
    ripple_db: float = 1.5
    dispersion_ps_per_ghz: float = 15.0
    nominal_gain_dbi: float = 2.0

    def __post_init__(self) -> None:
        require_positive(self.length_m, "length_m")
        require_positive(self.width_m, "width_m")

    @property
    def lower_cutoff_hz(self) -> float:
        """First-resonance frequency below which radiation efficiency drops.

        For an elliptical monopole/dipole the lower band edge is roughly the
        frequency where the major dimension equals a quarter wavelength.
        """
        return SPEED_OF_LIGHT / (4.0 * self.length_m)

    @property
    def upper_resonance_hz(self) -> float:
        """Upper resonance set by the minor dimension."""
        return SPEED_OF_LIGHT / (2.0 * self.width_m)

    # ------------------------------------------------------------------
    # Frequency-domain responses
    # ------------------------------------------------------------------
    def gain_db(self, frequency_hz) -> np.ndarray:
        """Boresight realized gain [dBi] versus frequency."""
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=float))
        fc = self.lower_cutoff_hz
        # Second-order high-pass magnitude for the electrically small regime.
        ratio = np.maximum(f, 1.0) / fc
        highpass = ratio ** 2 / np.sqrt(1.0 + ratio ** 4)
        gain = self.nominal_gain_dbi + linear_to_db(highpass ** 2) / 2.0
        # Standing-wave ripple across the operating band.
        ripple = (self.ripple_db / 2.0) * np.sin(
            2.0 * np.pi * f / self.upper_resonance_hz)
        gain = gain + ripple
        result = np.asarray(gain, dtype=float)
        if np.isscalar(frequency_hz):
            return float(result[0])
        return result

    def return_loss_db(self, frequency_hz) -> np.ndarray:
        """Return loss |S11| in dB (more negative = better matched).

        Below the lower cutoff the antenna reflects most of the power
        (S11 -> 0 dB); in band the match improves to roughly -15 dB with
        ripple.
        """
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=float))
        fc = self.lower_cutoff_hz
        ratio = np.maximum(f, 1.0) / fc
        # Reflection magnitude: near 1 below cutoff, ~0.18 in band.
        reflection = 1.0 / np.sqrt(1.0 + (ratio ** 2 - 1.0) ** 2 * 25.0)
        reflection = np.clip(reflection, 0.12, 1.0)
        ripple = 0.05 * np.cos(2.0 * np.pi * f / self.upper_resonance_hz)
        reflection = np.clip(reflection + ripple, 0.05, 1.0)
        s11_db = 20.0 * np.log10(reflection)
        if np.isscalar(frequency_hz):
            return float(s11_db[0])
        return s11_db

    def transfer_function(self, frequency_hz) -> np.ndarray:
        """Complex voltage transfer function including dispersion."""
        f = np.atleast_1d(np.asarray(frequency_hz, dtype=float))
        magnitude = 10.0 ** (self.gain_db(f) / 20.0)
        # Linear group-delay slope: tau(f) = tau0 + k*(f - f_ref).
        k = self.dispersion_ps_per_ghz * 1e-12 / 1e9
        f_ref = self.lower_cutoff_hz
        # Phase is the integral of -2*pi*tau(f) df.
        phase = -2.0 * np.pi * (0.5 * k * (f - f_ref) ** 2)
        response = magnitude * np.exp(1j * phase)
        if np.isscalar(frequency_hz):
            return complex(response[0])
        return response

    # ------------------------------------------------------------------
    # Time-domain response
    # ------------------------------------------------------------------
    def impulse_response(self, sample_rate_hz: float,
                         duration_s: float = 4e-9) -> np.ndarray:
        """Sampled impulse response of the antenna (real, causal).

        Built by sampling the transfer function on an FFT grid and enforcing
        conjugate symmetry so the time-domain response is real.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        require_positive(duration_s, "duration_s")
        num_samples = max(int(round(duration_s * sample_rate_hz)), 8)
        freqs = np.fft.rfftfreq(num_samples, d=1.0 / sample_rate_hz)
        response = self.transfer_function(np.maximum(freqs, 1.0))
        response = np.asarray(response, dtype=complex)
        response[0] = 0.0  # no DC radiation
        h = np.fft.irfft(response, n=num_samples)
        # Shift the (nearly) anti-causal part produced by the zero-phase
        # magnitude into a short causal response.
        peak = int(np.argmax(np.abs(h)))
        h = np.roll(h, -peak + num_samples // 8)
        return h

    def apply(self, waveform, sample_rate_hz: float) -> np.ndarray:
        """Filter a passband waveform through the antenna (same length out)."""
        waveform = np.asarray(waveform, dtype=float)
        h = self.impulse_response(sample_rate_hz)
        out = np.convolve(waveform, h, mode="full")[: waveform.size]
        return out

    def covers_band(self, low_hz: float, high_hz: float,
                    max_return_loss_db: float = -8.0) -> bool:
        """True when the match is better than ``max_return_loss_db`` across the band."""
        freqs = np.linspace(low_hz, high_hz, 256)
        return bool(np.all(self.return_loss_db(freqs) <= max_return_loss_db))
