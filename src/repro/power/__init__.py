"""Power models: per-block estimates and system budgets for both generations."""

from repro.power.budget import PowerBudget, gen1_power_budget, gen2_power_budget
from repro.power.models import (
    BlockPower,
    DigitalBackEndPowerModel,
    DigitalBlockPower,
    GATE_ENERGY_018UM_J,
    RFFrontEndPowerModel,
    adc_block_power,
)

__all__ = [
    "PowerBudget",
    "gen1_power_budget",
    "gen2_power_budget",
    "BlockPower",
    "DigitalBackEndPowerModel",
    "DigitalBlockPower",
    "GATE_ENERGY_018UM_J",
    "RFFrontEndPowerModel",
    "adc_block_power",
]
