"""Per-block power-dissipation models.

The paper's power claims are architectural: the ADC resolution drives both
the converter power and the digital back-end power, more than half of the
system power sits in the ADC + back end, and the gen-2 receiver can "trade
off power dissipation with signal processing complexity, quality of service
and data rate".  These analytical models are calibrated to representative
0.18 um / 1.8 V numbers so the *proportions* the paper describes come out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adc.power import ADCPowerModel, walden_power_w
from repro.utils.validation import require_int, require_non_negative, require_positive

__all__ = [
    "DigitalBlockPower",
    "DigitalBackEndPowerModel",
    "RFFrontEndPowerModel",
    "BlockPower",
]

#: Energy per gate toggle for a 0.18 um, 1.8 V standard-cell gate, including
#: average wiring load: on the order of tens of femtojoules.
GATE_ENERGY_018UM_J = 40e-15


@dataclass(frozen=True)
class BlockPower:
    """Power attributed to one named block."""

    name: str
    power_w: float

    def __post_init__(self) -> None:
        require_non_negative(self.power_w, "power_w")


@dataclass(frozen=True)
class DigitalBlockPower:
    """Switching-power model of one digital block.

    ``gate_count`` is the equivalent 2-input gate count, ``activity`` the
    average switching activity, and the block toggles at ``clock_hz``.
    """

    name: str
    gate_count: int
    activity: float = 0.15
    gate_energy_j: float = GATE_ENERGY_018UM_J

    def __post_init__(self) -> None:
        require_int(self.gate_count, "gate_count", minimum=0)
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        require_positive(self.gate_energy_j, "gate_energy_j")

    def power_w(self, clock_hz: float) -> float:
        """Dynamic power at the given clock."""
        require_positive(clock_hz, "clock_hz")
        return self.gate_count * self.activity * self.gate_energy_j * clock_hz


class DigitalBackEndPowerModel:
    """Power of the digital back end as a function of its configuration.

    Gate counts scale with the knobs the paper exposes:

    * the number of correlators / parallel search lanes,
    * the number of RAKE fingers,
    * the number of Viterbi states,
    * the ADC resolution (datapath width), and
    * the back-end clock rate (itself set by the ADC rate / parallelism).
    """

    # Equivalent gate counts per unit of each resource (datapath-width scaled).
    GATES_PER_CORRELATOR_PER_BIT = 450
    GATES_PER_RAKE_FINGER_PER_BIT = 700
    GATES_PER_VITERBI_STATE = 900
    GATES_CONTROL_OVERHEAD = 15_000
    GATES_CHANNEL_ESTIMATOR_PER_TAP = 120
    GATES_SPECTRAL_MONITOR = 25_000

    def __init__(self, adc_bits: int, backend_clock_hz: float,
                 gate_energy_j: float = GATE_ENERGY_018UM_J,
                 activity: float = 0.15) -> None:
        self.adc_bits = require_int(adc_bits, "adc_bits", minimum=1)
        require_positive(backend_clock_hz, "backend_clock_hz")
        self.backend_clock_hz = float(backend_clock_hz)
        self.gate_energy_j = gate_energy_j
        self.activity = activity

    def _block(self, name: str, gate_count: int) -> BlockPower:
        block = DigitalBlockPower(name=name, gate_count=int(gate_count),
                                  activity=self.activity,
                                  gate_energy_j=self.gate_energy_j)
        return BlockPower(name=name, power_w=block.power_w(self.backend_clock_hz))

    def breakdown(self, num_correlators: int = 16, num_rake_fingers: int = 4,
                  num_viterbi_states: int = 4,
                  channel_estimate_taps: int = 64,
                  spectral_monitoring: bool = True) -> list[BlockPower]:
        """Per-block power for a back-end configuration."""
        require_int(num_correlators, "num_correlators", minimum=0)
        require_int(num_rake_fingers, "num_rake_fingers", minimum=0)
        require_int(num_viterbi_states, "num_viterbi_states", minimum=0)
        require_int(channel_estimate_taps, "channel_estimate_taps", minimum=0)
        blocks = [
            self._block("correlators",
                        num_correlators * self.GATES_PER_CORRELATOR_PER_BIT
                        * self.adc_bits),
            self._block("rake",
                        num_rake_fingers * self.GATES_PER_RAKE_FINGER_PER_BIT
                        * self.adc_bits),
            self._block("viterbi",
                        num_viterbi_states * self.GATES_PER_VITERBI_STATE),
            self._block("channel_estimator",
                        channel_estimate_taps
                        * self.GATES_CHANNEL_ESTIMATOR_PER_TAP * self.adc_bits),
            self._block("control", self.GATES_CONTROL_OVERHEAD),
        ]
        if spectral_monitoring:
            blocks.append(self._block("spectral_monitor",
                                      self.GATES_SPECTRAL_MONITOR))
        return blocks

    def total_power_w(self, **kwargs) -> float:
        """Total back-end power for a configuration."""
        return float(sum(b.power_w for b in self.breakdown(**kwargs)))


@dataclass(frozen=True)
class RFFrontEndPowerModel:
    """Static (bias) power of the analog/RF blocks.

    Representative 0.18 um numbers: a wideband LNA burns ~10 mW, a
    quadrature mixer ~8 mW, the synthesizer/PLL ~15 mW, baseband buffers and
    the transmitter pulse generator a few mW each.
    """

    lna_w: float = 10e-3
    mixer_w: float = 8e-3
    synthesizer_w: float = 15e-3
    baseband_buffer_w: float = 4e-3
    transmitter_w: float = 5e-3

    def receive_blocks(self, direct_conversion: bool = True) -> list[BlockPower]:
        """Receive-chain blocks (gen 1 omits the mixer and synthesizer)."""
        blocks = [BlockPower("lna", self.lna_w),
                  BlockPower("baseband_buffers", self.baseband_buffer_w)]
        if direct_conversion:
            blocks.append(BlockPower("mixer", self.mixer_w))
            blocks.append(BlockPower("synthesizer", self.synthesizer_w))
        else:
            # Gen 1 still needs a clock-generation PLL.
            blocks.append(BlockPower("pll", 0.6 * self.synthesizer_w))
        return blocks

    def total_receive_power_w(self, direct_conversion: bool = True) -> float:
        """Total receive-chain RF power."""
        return float(sum(b.power_w
                         for b in self.receive_blocks(direct_conversion)))


def adc_block_power(architecture: str, bits: int, sample_rate_hz: float,
                    num_converters: int = 1,
                    num_interleaved: int = 1,
                    model: ADCPowerModel | None = None) -> BlockPower:
    """Power of the ADC subsystem as a :class:`BlockPower`."""
    model = model if model is not None else ADCPowerModel()
    architecture = architecture.lower()
    if architecture == "flash":
        power = model.flash_power_w(bits, sample_rate_hz,
                                    num_interleaved=num_interleaved)
    elif architecture == "sar":
        power = model.sar_power_w(bits, sample_rate_hz)
    elif architecture == "walden":
        power = walden_power_w(bits, sample_rate_hz)
    else:
        raise ValueError(f"unknown ADC architecture {architecture!r}")
    return BlockPower(name=f"adc_{architecture}", power_w=power * num_converters)


__all__.append("adc_block_power")
__all__.append("GATE_ENERGY_018UM_J")
