"""System power budgets for the two transceiver generations.

Reproduces the paper's claim that "more than half of the system power [is]
dissipated in the digital back end and the ADC", and provides the
power-vs-configuration sweep behind the gen-2 adaptation story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.power.models import (
    BlockPower,
    DigitalBackEndPowerModel,
    RFFrontEndPowerModel,
    adc_block_power,
)
from repro.utils.validation import require_int, require_positive

__all__ = ["PowerBudget", "gen1_power_budget", "gen2_power_budget"]


@dataclass
class PowerBudget:
    """A named collection of per-block powers with group accounting."""

    name: str
    blocks: list[BlockPower] = field(default_factory=list)
    #: Maps block name -> group ("rf", "adc", "digital").
    groups: dict[str, str] = field(default_factory=dict)

    def add(self, block: BlockPower, group: str) -> None:
        """Add a block under an accounting group."""
        self.blocks.append(block)
        self.groups[block.name] = group

    def total_w(self) -> float:
        """Total system power."""
        return float(sum(b.power_w for b in self.blocks))

    def group_power_w(self, group: str) -> float:
        """Power of one accounting group."""
        return float(sum(b.power_w for b in self.blocks
                         if self.groups.get(b.name) == group))

    def group_fraction(self, *groups: str) -> float:
        """Fraction of total power taken by the listed groups combined."""
        total = self.total_w()
        if total <= 0:
            return 0.0
        return float(sum(self.group_power_w(g) for g in groups) / total)

    def adc_plus_digital_fraction(self) -> float:
        """The paper's headline proportion: ADC + digital back end share."""
        return self.group_fraction("adc", "digital")

    def as_table(self) -> list[tuple[str, str, float, float]]:
        """Rows of ``(block, group, power_w, fraction)`` sorted by power."""
        total = self.total_w()
        rows = [(b.name, self.groups.get(b.name, "?"), b.power_w,
                 (b.power_w / total if total > 0 else 0.0))
                for b in self.blocks]
        return sorted(rows, key=lambda row: row[2], reverse=True)


def gen1_power_budget(adc_bits: int = 4,
                      adc_rate_hz: float = 2e9,
                      interleave_factor: int = 4,
                      backend_parallelism: int = 8,
                      num_correlators: int = 32) -> PowerBudget:
    """Power budget of the first-generation baseband transceiver.

    The back-end clock is the ADC rate divided by its parallelization
    factor (the whole point of the parallel architecture).
    """
    require_int(adc_bits, "adc_bits", minimum=1)
    require_positive(adc_rate_hz, "adc_rate_hz")
    require_int(backend_parallelism, "backend_parallelism", minimum=1)

    budget = PowerBudget(name="gen1")
    rf = RFFrontEndPowerModel()
    for block in rf.receive_blocks(direct_conversion=False):
        budget.add(block, "rf")

    budget.add(adc_block_power("flash", adc_bits, adc_rate_hz,
                               num_interleaved=interleave_factor), "adc")

    backend_clock = adc_rate_hz / backend_parallelism
    backend = DigitalBackEndPowerModel(adc_bits=adc_bits,
                                       backend_clock_hz=backend_clock)
    for block in backend.breakdown(num_correlators=num_correlators,
                                   num_rake_fingers=0,
                                   num_viterbi_states=0,
                                   channel_estimate_taps=32,
                                   spectral_monitoring=False):
        budget.add(block, "digital")
    # The parallel lanes replicate the correlator hardware.
    replication = BlockPower(
        "parallel_search_lanes",
        (backend_parallelism - 1) * backend.total_power_w(
            num_correlators=num_correlators, num_rake_fingers=0,
            num_viterbi_states=0, channel_estimate_taps=0,
            spectral_monitoring=False) * 0.5)
    budget.add(replication, "digital")
    return budget


def gen2_power_budget(adc_bits: int = 5,
                      adc_rate_hz: float = 500e6,
                      num_rake_fingers: int = 4,
                      num_viterbi_states: int = 4,
                      num_correlators: int = 16,
                      channel_estimate_taps: int = 64,
                      spectral_monitoring: bool = True,
                      backend_parallelism: int = 4) -> PowerBudget:
    """Power budget of the second-generation direct-conversion transceiver.

    Two SAR ADCs (I and Q); the digital back end's knobs are the ones the
    adaptation policy turns.
    """
    require_int(adc_bits, "adc_bits", minimum=1)
    require_positive(adc_rate_hz, "adc_rate_hz")

    budget = PowerBudget(name="gen2")
    rf = RFFrontEndPowerModel()
    for block in rf.receive_blocks(direct_conversion=True):
        budget.add(block, "rf")

    budget.add(adc_block_power("sar", adc_bits, adc_rate_hz,
                               num_converters=2), "adc")

    backend_clock = adc_rate_hz / backend_parallelism
    backend = DigitalBackEndPowerModel(adc_bits=adc_bits,
                                       backend_clock_hz=backend_clock)
    for block in backend.breakdown(num_correlators=num_correlators,
                                   num_rake_fingers=num_rake_fingers,
                                   num_viterbi_states=num_viterbi_states,
                                   channel_estimate_taps=channel_estimate_taps,
                                   spectral_monitoring=spectral_monitoring):
        budget.add(block, "digital")
    replication = BlockPower(
        "parallel_lanes",
        (backend_parallelism - 1) * 0.4 * backend.total_power_w(
            num_correlators=num_correlators,
            num_rake_fingers=num_rake_fingers,
            num_viterbi_states=num_viterbi_states,
            channel_estimate_taps=0,
            spectral_monitoring=False))
    budget.add(replication, "digital")
    return budget
