"""Automatic gain control ahead of the ADC.

With only 5 bits (gen 2) or 4 bits (gen 1) of resolution, the received
signal must be scaled so it neither clips nor disappears into the bottom
LSBs.  The AGC measures the signal envelope over a window and scales toward
a target RMS expressed as a fraction (backoff) of the ADC full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["AutomaticGainControl"]


@dataclass
class AutomaticGainControl:
    """Feed-forward block AGC.

    Attributes
    ----------
    target_rms:
        Desired RMS level at the ADC input.
    max_gain, min_gain:
        Gain limits of the variable-gain amplifier being modelled.
    """

    target_rms: float = 0.25
    max_gain: float = 1e4
    min_gain: float = 1e-4

    def __post_init__(self) -> None:
        require_positive(self.target_rms, "target_rms")
        require_positive(self.max_gain, "max_gain")
        require_positive(self.min_gain, "min_gain")
        if self.min_gain > self.max_gain:
            raise ValueError("min_gain must not exceed max_gain")

    def compute_gain(self, samples) -> float:
        """Gain that brings the buffer's RMS to the target (within limits)."""
        samples = np.asarray(samples)
        rms = float(np.sqrt(np.mean(np.abs(samples) ** 2))) if samples.size else 0.0
        if rms <= 0:
            return self.max_gain
        return float(np.clip(self.target_rms / rms, self.min_gain, self.max_gain))

    def apply(self, samples) -> tuple[np.ndarray, float]:
        """Scale the buffer; returns ``(scaled_samples, gain_used)``."""
        gain = self.compute_gain(samples)
        return np.asarray(samples) * gain, gain

    def apply_from_peak(self, samples, full_scale: float,
                        peak_backoff_db: float = 3.0) -> tuple[np.ndarray, float]:
        """Alternative policy: place the buffer's peak ``peak_backoff_db`` below full scale."""
        require_positive(full_scale, "full_scale")
        samples = np.asarray(samples)
        peak = float(np.max(np.abs(samples))) if samples.size else 0.0
        if peak <= 0:
            return samples.copy(), self.max_gain
        target_peak = full_scale * 10.0 ** (-peak_backoff_db / 20.0)
        gain = float(np.clip(target_peak / peak, self.min_gain, self.max_gain))
        return samples * gain, gain

    def apply_from_peak_batch(self, samples, full_scale: float,
                              peak_backoff_db: float = 3.0,
                              backend=None) -> tuple[np.ndarray, np.ndarray]:
        """Per-row :meth:`apply_from_peak` over a ``(..., samples)`` batch.

        Each row is scaled by its own peak-derived gain, exactly the gain
        :meth:`apply_from_peak` computes for that row alone (bitwise: the
        row peak, clip and multiply are the same scalar operations), so
        the batched front ends stay sample-identical to the per-packet
        AGC.  Rows padded with trailing zeros are safe — zeros never move
        a peak.  All-zero rows come back unchanged (times ``max_gain``,
        like the scalar method reports).  Returns ``(scaled, gains)`` with
        ``gains`` shaped like the leading axes.  ``backend`` selects the
        :class:`~repro.sim.backends.ArrayBackend` the scan runs on
        (``None`` = the NumPy reference).
        """
        require_positive(full_scale, "full_scale")
        if backend is None:
            from repro.sim.backends import reference_backend
            backend = reference_backend()
        xp = backend.xp
        samples = backend.asarray(samples)
        peaks = xp.max(xp.abs(samples), axis=-1)
        target_peak = full_scale * 10.0 ** (-peak_backoff_db / 20.0)
        gains = xp.clip(target_peak / xp.where(peaks > 0, peaks, 1.0),
                        self.min_gain, self.max_gain)
        gains = xp.where(peaks > 0, gains, self.max_gain)
        return samples * gains[..., None], gains
