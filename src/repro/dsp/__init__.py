"""Digital back end: correlators, acquisition, tracking, channel estimation,
RAKE combining, MLSE (Viterbi) equalization, spectral monitoring, notches, AGC,
and the parallelization/latency bookkeeping."""

from repro.dsp.acquisition import (
    AcquisitionConfig,
    AcquisitionResult,
    CoarseAcquisition,
)
from repro.dsp.agc import AutomaticGainControl
from repro.dsp.channel_estimation import ChannelEstimate, ChannelEstimator
from repro.dsp.correlator import (
    Correlator,
    CorrelatorBank,
    normalized_correlation,
    sliding_correlation,
)
from repro.dsp.notch import AdaptiveNotchCanceller, DigitalNotchFilter
from repro.dsp.parallelizer import (
    Parallelizer,
    acquisition_clock_cycles,
    acquisition_time_s,
)
from repro.dsp.rake import FINGER_POLICIES, RakeFinger, RakeReceiver
from repro.dsp.spectral_monitor import (
    InterfererReport,
    SpectralMonitor,
    SpectralMonitorConfig,
)
from repro.dsp.tracking import DelayLockedLoop, TrackingResult
from repro.dsp.viterbi import MLSEEqualizer, rake_isi_taps, symbol_spaced_channel

__all__ = [
    "AcquisitionConfig",
    "AcquisitionResult",
    "CoarseAcquisition",
    "AutomaticGainControl",
    "ChannelEstimate",
    "ChannelEstimator",
    "Correlator",
    "CorrelatorBank",
    "normalized_correlation",
    "sliding_correlation",
    "AdaptiveNotchCanceller",
    "DigitalNotchFilter",
    "Parallelizer",
    "acquisition_clock_cycles",
    "acquisition_time_s",
    "FINGER_POLICIES",
    "RakeFinger",
    "RakeReceiver",
    "InterfererReport",
    "SpectralMonitor",
    "SpectralMonitorConfig",
    "DelayLockedLoop",
    "TrackingResult",
    "MLSEEqualizer",
    "rake_isi_taps",
    "symbol_spaced_channel",
]
