"""Coarse packet acquisition (detection + timing synchronization).

Both chips synchronize entirely in the digital domain: a bank of correlators
sweeps timing hypotheses against the known preamble until a peak crosses a
threshold.  The paper's figures of merit are the acquisition *latency*
(gen-1: "packet synchronization is obtained in less than 70 us", target
preamble ~20 us) and the detection performance at low SNR, both of which the
model reports.

The search is hypothesis-parallel: with ``parallelism`` correlator lanes the
back end evaluates that many timing offsets per clock, which is exactly how
parallelization buys acquisition speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.correlator import (
    _resolve_backend,
    normalized_correlation,
    normalized_correlation_batch,
    sliding_correlation,
    sliding_correlation_batch,
)
from repro.dsp.parallelizer import acquisition_time_s
from repro.utils.validation import require_int, require_positive

__all__ = ["AcquisitionConfig", "AcquisitionResult",
           "BatchedAcquisitionResult", "CoarseAcquisition"]


@dataclass(frozen=True)
class AcquisitionConfig:
    """Parameters of the coarse-acquisition search.

    Attributes
    ----------
    threshold:
        Normalized-correlation magnitude above which a packet is declared
        (0..1, since the detector statistic is energy-normalized).
    cfar_factor:
        Secondary (CFAR-style) detection criterion: the packet is also
        declared when the raw matched-filter peak exceeds ``cfar_factor``
        times the median of the raw correlation magnitude across the
        searched window.  This criterion integrates over the whole preamble
        and therefore keeps working when the *per-pulse* SNR is very low
        (e.g. many pulses per bit), where the energy-normalized metric
        saturates.
    parallelism:
        Number of timing hypotheses evaluated per back-end clock cycle.
    backend_clock_hz:
        Clock rate of the digital back end (used only for latency
        accounting, not for the math).
    search_step_samples:
        Granularity of the timing search; 1 = every sample offset.
    max_search_samples:
        Cap on how many sample offsets are searched (None = all).
    """

    threshold: float = 0.55
    cfar_factor: float = 8.0
    parallelism: int = 16
    backend_clock_hz: float = 100e6
    search_step_samples: int = 1
    max_search_samples: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        require_positive(self.cfar_factor, "cfar_factor")
        require_int(self.parallelism, "parallelism", minimum=1)
        require_positive(self.backend_clock_hz, "backend_clock_hz")
        require_int(self.search_step_samples, "search_step_samples", minimum=1)


@dataclass(frozen=True)
class AcquisitionResult:
    """Outcome of a coarse-acquisition attempt."""

    detected: bool
    timing_offset_samples: int
    peak_metric: float
    num_hypotheses_searched: int
    search_time_s: float
    correlation_profile: np.ndarray = field(repr=False, default=None)

    def timing_error_samples(self, true_offset: int) -> int:
        """Signed timing error relative to the known true offset."""
        return int(self.timing_offset_samples - true_offset)


@dataclass(frozen=True)
class BatchedAcquisitionResult:
    """Acquisition outcomes for a whole batch of capture buffers.

    The record layout mirrors :class:`AcquisitionResult` with one leading
    batch axis: element ``i`` of every array is packet ``i``'s outcome, and
    :meth:`result_for` materializes the per-packet view when scalar-record
    consumers (packet scoring, reports) need one.
    """

    detected: np.ndarray
    timing_offset_samples: np.ndarray
    peak_metric: np.ndarray
    num_hypotheses_searched: np.ndarray
    search_time_s: np.ndarray
    correlation_profiles: np.ndarray = field(repr=False, default=None)

    def __len__(self) -> int:
        return int(self.detected.size)

    def result_for(self, index: int) -> AcquisitionResult:
        """Packet ``index``'s outcome as a scalar :class:`AcquisitionResult`."""
        profile = (self.correlation_profiles[index]
                   if self.correlation_profiles is not None else None)
        return AcquisitionResult(
            detected=bool(self.detected[index]),
            timing_offset_samples=int(self.timing_offset_samples[index]),
            peak_metric=float(self.peak_metric[index]),
            num_hypotheses_searched=int(self.num_hypotheses_searched[index]),
            search_time_s=float(self.search_time_s[index]),
            correlation_profile=profile)


class CoarseAcquisition:
    """Threshold detector + argmax timing estimator over the preamble template."""

    def __init__(self, preamble_template, config: AcquisitionConfig | None = None
                 ) -> None:
        self.template = np.asarray(preamble_template)
        if self.template.size == 0:
            raise ValueError("preamble template must not be empty")
        self.config = config if config is not None else AcquisitionConfig()

    def _searched_offsets(self, num_correlations: int) -> np.ndarray:
        offsets = np.arange(0, num_correlations, self.config.search_step_samples)
        if self.config.max_search_samples is not None:
            offsets = offsets[offsets < self.config.max_search_samples]
        return offsets

    def acquire(self, samples) -> AcquisitionResult:
        """Search the sample buffer for the preamble.

        The timing estimate is the argmax of the raw matched-filter output
        (optimal at any SNR).  Detection combines two criteria: the
        energy-normalized correlation at the peak (a level-independent
        threshold, effective at moderate per-pulse SNR) and a CFAR-style
        peak-to-median ratio of the raw correlation (which integrates the
        whole preamble and works when each individual pulse is buried in
        noise).
        """
        samples = np.asarray(samples)
        raw = np.abs(sliding_correlation(samples, self.template))
        metric = np.abs(normalized_correlation(samples, self.template))
        if metric.size == 0:
            return AcquisitionResult(
                detected=False, timing_offset_samples=0, peak_metric=0.0,
                num_hypotheses_searched=0, search_time_s=0.0,
                correlation_profile=metric)
        offsets = self._searched_offsets(metric.size)
        searched_raw = raw[offsets]
        best_index = int(np.argmax(searched_raw))
        timing = int(offsets[best_index])
        peak_normalized = float(metric[timing])

        median_raw = float(np.median(searched_raw))
        cfar_ratio = (searched_raw[best_index] / median_raw
                      if median_raw > 0 else np.inf)
        detected = bool(peak_normalized >= self.config.threshold
                        or cfar_ratio >= self.config.cfar_factor)
        search_time = acquisition_time_s(
            num_hypotheses=offsets.size,
            parallelism=self.config.parallelism,
            backend_clock_hz=self.config.backend_clock_hz)
        return AcquisitionResult(
            detected=detected,
            timing_offset_samples=timing,
            peak_metric=peak_normalized,
            num_hypotheses_searched=int(offsets.size),
            search_time_s=search_time,
            correlation_profile=metric)

    def acquire_batch(self, samples, valid_lengths=None, backend=None,
                      keep_profiles: bool = False) -> BatchedAcquisitionResult:
        """Search a ``(packets, num_samples)`` batch of buffers at once.

        The correlation plane — every packet x every timing hypothesis —
        is computed in one batched FFT pass on the selected
        :class:`~repro.sim.backends.ArrayBackend`; the per-packet decision
        logic (argmax timing, threshold + CFAR detection) then replicates
        :meth:`acquire` row by row.  ``valid_lengths`` gives each row's
        true sample count when rows were zero-padded to a common width, so
        padding never enters a packet's searched offsets.  Decisions match
        per-packet :meth:`acquire` calls; the correlation floats can
        differ at rounding level (the FFT length follows the batch width).
        ``keep_profiles`` retains the normalized correlation plane (off by
        default — it is the batch's largest array).
        """
        backend = _resolve_backend(backend)
        samples = backend.asarray(samples)
        if samples.ndim != 2:
            raise ValueError("acquire_batch expects a (packets, num_samples) "
                             "batch; use acquire() for a single buffer")
        num_packets, num_samples = (int(samples.shape[0]),
                                    int(samples.shape[1]))
        if valid_lengths is None:
            valid_lengths = np.full(num_packets, num_samples, dtype=np.int64)
        else:
            valid_lengths = np.asarray(valid_lengths, dtype=np.int64)
            if valid_lengths.shape != (num_packets,):
                raise ValueError("valid_lengths must hold one length per "
                                 "packet")
            if np.any(valid_lengths < 0) or np.any(valid_lengths
                                                   > num_samples):
                raise ValueError("valid_lengths must lie in [0, num_samples]")

        raw = np.abs(backend.to_numpy(
            sliding_correlation_batch(samples, self.template,
                                      backend=backend)))
        profiles = None
        if keep_profiles:
            profiles = np.abs(backend.to_numpy(
                normalized_correlation_batch(samples, self.template,
                                             backend=backend)))

        detected = np.zeros(num_packets, dtype=bool)
        timing = np.zeros(num_packets, dtype=np.int64)
        peak = np.zeros(num_packets, dtype=float)
        hypotheses = np.zeros(num_packets, dtype=np.int64)
        search_time = np.zeros(num_packets, dtype=float)
        cfar = np.zeros(num_packets, dtype=float)
        raw_peak = np.zeros(num_packets, dtype=float)
        template_size = int(self.template.size)
        any_searched = False
        for index in range(num_packets):
            metric_size = max(int(valid_lengths[index]) - template_size + 1, 0)
            if metric_size == 0:
                continue
            any_searched = True
            offsets = self._searched_offsets(metric_size)
            searched_raw = raw[index, offsets]
            best_index = int(np.argmax(searched_raw))
            timing[index] = int(offsets[best_index])
            raw_peak[index] = float(searched_raw[best_index])
            median_raw = float(np.median(searched_raw))
            cfar[index] = (raw_peak[index] / median_raw
                           if median_raw > 0 else np.inf)
            hypotheses[index] = int(offsets.size)
            search_time[index] = acquisition_time_s(
                num_hypotheses=offsets.size,
                parallelism=self.config.parallelism,
                backend_clock_hz=self.config.backend_clock_hz)
        if any_searched:
            # The energy-normalized metric is only thresholded at each
            # packet's raw-correlation peak, so normalize those single
            # offsets instead of the whole plane (one small gather rather
            # than a second batch-wide FFT pass).
            xp = backend.xp
            windows = backend.gather_windows(samples, timing[:, None],
                                             template_size)
            local_energy = backend.to_numpy(
                xp.sum(xp.abs(windows) ** 2, axis=-1))[:, 0]
            template_energy = float(np.sum(np.abs(np.asarray(
                backend.to_numpy(self.template))) ** 2))
            denom = np.sqrt(np.maximum(
                np.maximum(local_energy, 0.0) * template_energy, 1e-30))
            searched = hypotheses > 0
            peak[searched] = raw_peak[searched] / denom[searched]
            detected = searched & ((peak >= self.config.threshold)
                                   | (cfar >= self.config.cfar_factor))
        return BatchedAcquisitionResult(
            detected=detected, timing_offset_samples=timing,
            peak_metric=peak, num_hypotheses_searched=hypotheses,
            search_time_s=search_time,
            correlation_profiles=profiles)

    def first_crossing(self, samples) -> AcquisitionResult:
        """Early-terminate variant: stop at the first threshold crossing.

        This is how a latency-constrained implementation behaves — it does
        not wait to see the global maximum.  The reported search time counts
        only the hypotheses actually evaluated before the crossing.
        """
        samples = np.asarray(samples)
        metric = np.abs(normalized_correlation(samples, self.template))
        offsets = self._searched_offsets(metric.size)
        crossing_positions = np.where(metric[offsets] >= self.config.threshold)[0]
        if crossing_positions.size == 0:
            # Fall back to the full search result (not detected).
            full = self.acquire(samples)
            return full
        first = int(crossing_positions[0])
        # Refine within one template length after the crossing.  A repeated
        # preamble produces partial-alignment sidelobes up to one repetition
        # early, and multipath delays the strongest path; both land within
        # one template length of the first crossing.
        refine_span = max(self.template.size // self.config.search_step_samples, 8)
        window_end = min(first + refine_span, offsets.size)
        local = metric[offsets[first:window_end]]
        refined = first + int(np.argmax(local))
        hypotheses_evaluated = refined + 1
        search_time = acquisition_time_s(
            num_hypotheses=hypotheses_evaluated,
            parallelism=self.config.parallelism,
            backend_clock_hz=self.config.backend_clock_hz)
        return AcquisitionResult(
            detected=True,
            timing_offset_samples=int(offsets[refined]),
            peak_metric=float(metric[offsets[refined]]),
            num_hypotheses_searched=hypotheses_evaluated,
            search_time_s=search_time,
            correlation_profile=metric)

    def detection_statistics(self, samples_without_signal) -> tuple[float, float]:
        """False-alarm statistics: (mean, max) of the metric on noise only."""
        metric = np.abs(normalized_correlation(samples_without_signal,
                                               self.template))
        if metric.size == 0:
            return 0.0, 0.0
        return float(np.mean(metric)), float(np.max(metric))
