"""Coarse packet acquisition (detection + timing synchronization).

Both chips synchronize entirely in the digital domain: a bank of correlators
sweeps timing hypotheses against the known preamble until a peak crosses a
threshold.  The paper's figures of merit are the acquisition *latency*
(gen-1: "packet synchronization is obtained in less than 70 us", target
preamble ~20 us) and the detection performance at low SNR, both of which the
model reports.

The search is hypothesis-parallel: with ``parallelism`` correlator lanes the
back end evaluates that many timing offsets per clock, which is exactly how
parallelization buys acquisition speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.correlator import normalized_correlation, sliding_correlation
from repro.dsp.parallelizer import acquisition_time_s
from repro.utils.validation import require_int, require_positive

__all__ = ["AcquisitionConfig", "AcquisitionResult", "CoarseAcquisition"]


@dataclass(frozen=True)
class AcquisitionConfig:
    """Parameters of the coarse-acquisition search.

    Attributes
    ----------
    threshold:
        Normalized-correlation magnitude above which a packet is declared
        (0..1, since the detector statistic is energy-normalized).
    cfar_factor:
        Secondary (CFAR-style) detection criterion: the packet is also
        declared when the raw matched-filter peak exceeds ``cfar_factor``
        times the median of the raw correlation magnitude across the
        searched window.  This criterion integrates over the whole preamble
        and therefore keeps working when the *per-pulse* SNR is very low
        (e.g. many pulses per bit), where the energy-normalized metric
        saturates.
    parallelism:
        Number of timing hypotheses evaluated per back-end clock cycle.
    backend_clock_hz:
        Clock rate of the digital back end (used only for latency
        accounting, not for the math).
    search_step_samples:
        Granularity of the timing search; 1 = every sample offset.
    max_search_samples:
        Cap on how many sample offsets are searched (None = all).
    """

    threshold: float = 0.55
    cfar_factor: float = 8.0
    parallelism: int = 16
    backend_clock_hz: float = 100e6
    search_step_samples: int = 1
    max_search_samples: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        require_positive(self.cfar_factor, "cfar_factor")
        require_int(self.parallelism, "parallelism", minimum=1)
        require_positive(self.backend_clock_hz, "backend_clock_hz")
        require_int(self.search_step_samples, "search_step_samples", minimum=1)


@dataclass(frozen=True)
class AcquisitionResult:
    """Outcome of a coarse-acquisition attempt."""

    detected: bool
    timing_offset_samples: int
    peak_metric: float
    num_hypotheses_searched: int
    search_time_s: float
    correlation_profile: np.ndarray = field(repr=False, default=None)

    def timing_error_samples(self, true_offset: int) -> int:
        """Signed timing error relative to the known true offset."""
        return int(self.timing_offset_samples - true_offset)


class CoarseAcquisition:
    """Threshold detector + argmax timing estimator over the preamble template."""

    def __init__(self, preamble_template, config: AcquisitionConfig | None = None
                 ) -> None:
        self.template = np.asarray(preamble_template)
        if self.template.size == 0:
            raise ValueError("preamble template must not be empty")
        self.config = config if config is not None else AcquisitionConfig()

    def _searched_offsets(self, num_correlations: int) -> np.ndarray:
        offsets = np.arange(0, num_correlations, self.config.search_step_samples)
        if self.config.max_search_samples is not None:
            offsets = offsets[offsets < self.config.max_search_samples]
        return offsets

    def acquire(self, samples) -> AcquisitionResult:
        """Search the sample buffer for the preamble.

        The timing estimate is the argmax of the raw matched-filter output
        (optimal at any SNR).  Detection combines two criteria: the
        energy-normalized correlation at the peak (a level-independent
        threshold, effective at moderate per-pulse SNR) and a CFAR-style
        peak-to-median ratio of the raw correlation (which integrates the
        whole preamble and works when each individual pulse is buried in
        noise).
        """
        samples = np.asarray(samples)
        raw = np.abs(sliding_correlation(samples, self.template))
        metric = np.abs(normalized_correlation(samples, self.template))
        if metric.size == 0:
            return AcquisitionResult(
                detected=False, timing_offset_samples=0, peak_metric=0.0,
                num_hypotheses_searched=0, search_time_s=0.0,
                correlation_profile=metric)
        offsets = self._searched_offsets(metric.size)
        searched_raw = raw[offsets]
        best_index = int(np.argmax(searched_raw))
        timing = int(offsets[best_index])
        peak_normalized = float(metric[timing])

        median_raw = float(np.median(searched_raw))
        cfar_ratio = (searched_raw[best_index] / median_raw
                      if median_raw > 0 else np.inf)
        detected = bool(peak_normalized >= self.config.threshold
                        or cfar_ratio >= self.config.cfar_factor)
        search_time = acquisition_time_s(
            num_hypotheses=offsets.size,
            parallelism=self.config.parallelism,
            backend_clock_hz=self.config.backend_clock_hz)
        return AcquisitionResult(
            detected=detected,
            timing_offset_samples=timing,
            peak_metric=peak_normalized,
            num_hypotheses_searched=int(offsets.size),
            search_time_s=search_time,
            correlation_profile=metric)

    def first_crossing(self, samples) -> AcquisitionResult:
        """Early-terminate variant: stop at the first threshold crossing.

        This is how a latency-constrained implementation behaves — it does
        not wait to see the global maximum.  The reported search time counts
        only the hypotheses actually evaluated before the crossing.
        """
        samples = np.asarray(samples)
        metric = np.abs(normalized_correlation(samples, self.template))
        offsets = self._searched_offsets(metric.size)
        crossing_positions = np.where(metric[offsets] >= self.config.threshold)[0]
        if crossing_positions.size == 0:
            # Fall back to the full search result (not detected).
            full = self.acquire(samples)
            return full
        first = int(crossing_positions[0])
        # Refine within one template length after the crossing.  A repeated
        # preamble produces partial-alignment sidelobes up to one repetition
        # early, and multipath delays the strongest path; both land within
        # one template length of the first crossing.
        refine_span = max(self.template.size // self.config.search_step_samples, 8)
        window_end = min(first + refine_span, offsets.size)
        local = metric[offsets[first:window_end]]
        refined = first + int(np.argmax(local))
        hypotheses_evaluated = refined + 1
        search_time = acquisition_time_s(
            num_hypotheses=hypotheses_evaluated,
            parallelism=self.config.parallelism,
            backend_clock_hz=self.config.backend_clock_hz)
        return AcquisitionResult(
            detected=True,
            timing_offset_samples=int(offsets[refined]),
            peak_metric=float(metric[offsets[refined]]),
            num_hypotheses_searched=hypotheses_evaluated,
            search_time_s=search_time,
            correlation_profile=metric)

    def detection_statistics(self, samples_without_signal) -> tuple[float, float]:
        """False-alarm statistics: (mean, max) of the metric on noise only."""
        metric = np.abs(normalized_correlation(samples_without_signal,
                                               self.template))
        if metric.size == 0:
            return 0.0, 0.0
        return float(np.mean(metric)), float(np.max(metric))
