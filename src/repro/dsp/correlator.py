"""Correlator bank — the workhorse of both digital back ends.

Fig. 1 and Fig. 3 both show banks of correlators fed by the (parallelized)
ADC samples.  A correlator multiplies the incoming samples by a stored
template and accumulates; everything downstream — acquisition, tracking,
channel estimation, RAKE combining, demodulation — is built from sliding or
symbol-aligned correlations against appropriate templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.utils.validation import require_int, require_positive

__all__ = ["Correlator", "CorrelatorBank", "sliding_correlation",
           "normalized_correlation", "sliding_correlation_batch",
           "normalized_correlation_batch"]


def sliding_correlation(samples, template) -> np.ndarray:
    """Sliding (cross-)correlation of ``samples`` against ``template``.

    Output index ``k`` is ``sum_n samples[k + n] * conj(template[n])`` for
    every alignment where the template fits entirely inside the sample
    buffer (``'valid'`` correlation).  This is what a hardware correlator
    sliding one sample per clock computes.
    """
    samples = np.asarray(samples)
    template = np.asarray(template)
    if template.size == 0 or samples.size < template.size:
        return np.zeros(0, dtype=complex if (np.iscomplexobj(samples)
                                             or np.iscomplexobj(template)) else float)
    # FFT-based correlation: orders of magnitude faster than the direct form
    # for the long preamble templates the acquisition search uses.
    return sp_signal.fftconvolve(samples, np.conj(template[::-1]), mode="valid")


def normalized_correlation(samples, template) -> np.ndarray:
    """Sliding correlation normalized by the local signal and template energy.

    The output is bounded to [0, 1] in magnitude, making threshold choices
    independent of the received signal level — the practical detector
    statistic for packet acquisition under unknown gain.
    """
    samples = np.asarray(samples)
    template = np.asarray(template)
    raw = sliding_correlation(samples, template)
    if raw.size == 0:
        return raw
    template_energy = float(np.sum(np.abs(template) ** 2))
    window = np.ones(template.size)
    local_energy = sp_signal.fftconvolve(np.abs(samples) ** 2, window,
                                         mode="valid")
    # fftconvolve can produce tiny negative values from round-off.
    local_energy = np.maximum(local_energy.real, 0.0)
    denom = np.sqrt(np.maximum(local_energy * template_energy, 1e-30))
    return raw / denom


def _resolve_backend(backend):
    """Late-bound backend lookup (avoids a dsp <-> sim import cycle)."""
    from repro.sim.backends import get_backend, reference_backend
    return reference_backend() if backend is None else get_backend(backend)


def sliding_correlation_batch(samples, template, backend=None):
    """Sliding correlation of a ``(..., num_samples)`` batch of buffers.

    The batched form of :func:`sliding_correlation`: output column ``k`` of
    each row is ``sum_n samples[..., k + n] * conj(template[n])`` for every
    alignment where the template fits (``'valid'``), computed for the whole
    batch in one FFT pass on the selected
    :class:`~repro.sim.backends.ArrayBackend`.  Rows padded to a common
    length produce the same *decisions* as per-row calls; the floats can
    differ at rounding level because the FFT length follows the padded
    batch width.
    """
    backend = _resolve_backend(backend)
    xp = backend.xp
    samples = backend.asarray(samples)
    template = backend.asarray(template)
    num = int(samples.shape[-1])
    length = int(template.shape[-1])
    if length == 0 or num < length:
        dtype = complex if (xp.iscomplexobj(samples)
                            or xp.iscomplexobj(template)) else float
        return xp.zeros(samples.shape[:-1] + (0,), dtype=dtype)
    kernel = xp.conj(template[::-1]).reshape(
        (1,) * (samples.ndim - 1) + (length,))
    full = backend.fftconvolve_full(samples, kernel)
    return full[..., length - 1:num]


def normalized_correlation_batch(samples, template, backend=None):
    """Batched :func:`normalized_correlation` over ``(..., num_samples)``.

    Each row's output is the sliding correlation normalized by the local
    signal and template energy, magnitude-bounded to [0, 1] — the detector
    statistic :meth:`CoarseAcquisition.acquire_batch` thresholds.
    """
    backend = _resolve_backend(backend)
    xp = backend.xp
    samples = backend.asarray(samples)
    template = backend.asarray(template)
    raw = sliding_correlation_batch(samples, template, backend=backend)
    if raw.shape[-1] == 0:
        return raw
    length = int(template.shape[-1])
    num = int(samples.shape[-1])
    template_energy = float(xp.sum(xp.abs(template) ** 2))
    window = xp.ones((1,) * (samples.ndim - 1) + (length,))
    local_energy = backend.fftconvolve_full(xp.abs(samples) ** 2,
                                            window)[..., length - 1:num]
    local_energy = xp.maximum(xp.real(local_energy), 0.0)
    denom = xp.sqrt(xp.maximum(local_energy * template_energy, 1e-30))
    return raw / denom


@dataclass
class Correlator:
    """A single correlator with a fixed template."""

    template: np.ndarray
    name: str = "correlator"

    def __post_init__(self) -> None:
        self.template = np.asarray(self.template)
        if self.template.size == 0:
            raise ValueError("template must not be empty")

    def correlate(self, samples) -> np.ndarray:
        """Sliding correlation of the input against the stored template."""
        return sliding_correlation(samples, self.template)

    def correlate_at(self, samples, offset: int) -> complex | float:
        """Single correlation at a specific sample alignment.

        If fewer than ``len(template)`` samples remain past ``offset`` the
        correlation uses the available overlap (the tail of a packet).
        """
        samples = np.asarray(samples)
        require_int(offset, "offset", minimum=0)
        if offset >= samples.size:
            return 0.0
        segment = samples[offset:offset + self.template.size]
        template = self.template[:segment.size]
        value = np.sum(segment * np.conj(template))
        return complex(value) if np.iscomplexobj(value) else float(value)

    def matched_filter_gain(self) -> float:
        """Processing gain of the correlator (template energy)."""
        return float(np.sum(np.abs(self.template) ** 2))


class CorrelatorBank:
    """A bank of correlators evaluated in parallel.

    The hardware motivation: the paper's back ends instantiate many
    correlators so that multiple timing hypotheses (or multiple RAKE
    fingers) are evaluated simultaneously, trading silicon area for
    acquisition latency.  ``evaluate`` returns the full hypothesis matrix.
    """

    def __init__(self, templates, names: list[str] | None = None) -> None:
        templates = [np.asarray(t) for t in templates]
        if len(templates) == 0:
            raise ValueError("need at least one template")
        if names is not None and len(names) != len(templates):
            raise ValueError("names must match the number of templates")
        self.correlators = [
            Correlator(template=t,
                       name=names[i] if names else f"corr_{i}")
            for i, t in enumerate(templates)
        ]

    def __len__(self) -> int:
        return len(self.correlators)

    def evaluate(self, samples) -> list[np.ndarray]:
        """Sliding correlations of every correlator against the input."""
        return [c.correlate(samples) for c in self.correlators]

    def evaluate_at(self, samples, offset: int) -> np.ndarray:
        """All correlator outputs at a single alignment."""
        values = [c.correlate_at(samples, offset) for c in self.correlators]
        return np.asarray(values)

    def best_match(self, samples) -> tuple[int, int, float]:
        """Return ``(correlator_index, sample_offset, |peak|)`` of the best match."""
        best = (-1, -1, -np.inf)
        for index, correlator in enumerate(self.correlators):
            output = np.abs(correlator.correlate(samples))
            if output.size == 0:
                continue
            offset = int(np.argmax(output))
            peak = float(output[offset])
            if peak > best[2]:
                best = (index, offset, peak)
        if best[0] < 0:
            raise ValueError("input shorter than every template in the bank")
        return best
