"""Preamble-based channel impulse-response estimation.

"In order to cope with the multipath, the channel impulse response is
estimated with a precision of up to four bits during the packet preamble.
This information is used in a RAKE receiver and in a Viterbi demodulator."

The estimator correlates the received preamble against the known spreading
sequence; because m-sequences have an (almost) impulsive periodic
autocorrelation, the correlation directly reads out the composite channel
impulse response (physical channel + antenna + front end).  The estimate is
then quantized to the configured precision (the paper's 4 bits), which is
what the silicon stores and what the RAKE/Viterbi actually use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.correlator import _resolve_backend
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.validation import require_int

__all__ = ["ChannelEstimate", "BatchedChannelEstimate", "ChannelEstimator"]


@dataclass(frozen=True)
class ChannelEstimate:
    """A (possibly quantized) estimate of the composite channel response.

    ``taps`` are complex (or real) channel coefficients on the receiver's
    sample grid, starting at the coarse-timing instant.
    """

    taps: np.ndarray
    sample_rate_hz: float
    quantization_bits: int | None

    @property
    def num_taps(self) -> int:
        return int(self.taps.size)

    def strongest_taps(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, values)`` of the ``count`` strongest taps."""
        require_int(count, "count", minimum=1)
        count = min(count, self.num_taps)
        order = np.argsort(np.abs(self.taps))[::-1][:count]
        order = np.sort(order)
        return order, self.taps[order]

    def energy_capture(self, count: int) -> float:
        """Fraction of estimated channel energy in the ``count`` strongest taps."""
        total = float(np.sum(np.abs(self.taps) ** 2))
        if total <= 0:
            return 0.0
        _, values = self.strongest_taps(count)
        return float(np.sum(np.abs(values) ** 2) / total)

    def rms_delay_spread_s(self) -> float:
        """RMS delay spread implied by the estimated power-delay profile."""
        powers = np.abs(self.taps) ** 2
        total = np.sum(powers)
        if total <= 0:
            return 0.0
        delays = np.arange(self.num_taps) / self.sample_rate_hz
        mean = np.sum(powers * delays) / total
        second = np.sum(powers * delays ** 2) / total
        return float(np.sqrt(max(second - mean ** 2, 0.0)))


@dataclass(frozen=True)
class BatchedChannelEstimate:
    """Channel estimates for a whole batch of packets.

    ``taps`` carries a leading batch axis — row ``i`` is packet ``i``'s
    (possibly quantized) composite-channel estimate on the receiver's
    sample grid, starting at that packet's coarse-timing instant.
    :meth:`estimate_for` materializes the scalar-record view.
    """

    taps: np.ndarray
    sample_rate_hz: float
    quantization_bits: int | None

    def __len__(self) -> int:
        return int(self.taps.shape[0])

    def estimate_for(self, index: int) -> ChannelEstimate:
        """Packet ``index``'s estimate as a scalar :class:`ChannelEstimate`."""
        return ChannelEstimate(taps=self.taps[index],
                               sample_rate_hz=self.sample_rate_hz,
                               quantization_bits=self.quantization_bits)


class ChannelEstimator:
    """Correlation-based channel sounder using the packet preamble.

    Parameters
    ----------
    preamble_symbols:
        The known +-1 chip sequence of ONE repetition of the preamble.
    samples_per_symbol:
        Receiver samples per preamble chip.
    pulse_template:
        The (sampled) transmit pulse shape, used to collapse the pulse
        energy so the estimate approximates the propagation channel rather
        than channel*pulse.  Pass ``None`` to estimate the full composite
        response including the pulse.
    num_taps:
        Length of the estimated impulse response, in samples.
    quantization_bits:
        Precision of the stored estimate (the paper uses up to 4); ``None``
        keeps the estimate at full precision.
    """

    def __init__(self, preamble_symbols, samples_per_symbol: int,
                 pulse_template=None, num_taps: int = 64,
                 quantization_bits: int | None = 4) -> None:
        self.preamble_symbols = np.asarray(preamble_symbols, dtype=float)
        if self.preamble_symbols.size == 0:
            raise ValueError("preamble_symbols must not be empty")
        self.samples_per_symbol = require_int(samples_per_symbol,
                                              "samples_per_symbol", minimum=1)
        self.pulse_template = (np.asarray(pulse_template)
                               if pulse_template is not None else None)
        self.num_taps = require_int(num_taps, "num_taps", minimum=1)
        if quantization_bits is not None:
            require_int(quantization_bits, "quantization_bits", minimum=1)
        self.quantization_bits = quantization_bits

    def _reference_waveform(self) -> np.ndarray:
        """The known transmitted preamble waveform on the sample grid."""
        upsampled = np.zeros(self.preamble_symbols.size * self.samples_per_symbol)
        upsampled[::self.samples_per_symbol] = self.preamble_symbols
        if self.pulse_template is not None:
            upsampled = np.convolve(upsampled, self.pulse_template, mode="full")
        return upsampled

    def estimate(self, received_samples, timing_offset_samples: int,
                 sample_rate_hz: float) -> ChannelEstimate:
        """Estimate the channel from the received preamble portion.

        ``timing_offset_samples`` is the coarse-acquisition timing (where
        the preamble starts in ``received_samples``).
        """
        received_samples = np.asarray(received_samples)
        require_int(timing_offset_samples, "timing_offset_samples", minimum=0)
        reference = self._reference_waveform()
        needed = reference.size + self.num_taps
        segment = received_samples[timing_offset_samples:
                                   timing_offset_samples + needed]
        if segment.size < reference.size:
            raise ValueError("not enough received samples to cover the preamble")

        # Cross-correlate: tap[d] = sum_n r[n + d] * conj(ref[n]) / ||ref||^2.
        reference_energy = float(np.sum(np.abs(reference) ** 2))
        reference_conj = np.conj(reference)
        taps = np.zeros(self.num_taps,
                        dtype=complex if np.iscomplexobj(segment) else float)
        available = segment.size - reference.size + 1
        usable_taps = min(self.num_taps, max(available, 0))
        for delay in range(usable_taps):
            window = segment[delay:delay + reference.size]
            taps[delay] = np.sum(window * reference_conj) / reference_energy

        if self.quantization_bits is not None:
            peak = float(np.max(np.abs(taps))) if taps.size else 0.0
            if peak > 0:
                fmt = FixedPointFormat(total_bits=self.quantization_bits,
                                       full_scale=peak * 1.001)
                taps = fmt.quantize(taps)
        return ChannelEstimate(taps=taps, sample_rate_hz=sample_rate_hz,
                               quantization_bits=self.quantization_bits)

    def estimate_averaged(self, received_samples, timing_offset_samples: int,
                          sample_rate_hz: float,
                          num_repetitions: int) -> ChannelEstimate:
        """Average the estimate over several preamble repetitions.

        Each repetition occupies ``len(preamble) * samples_per_symbol``
        samples; averaging improves the estimate SNR by the repetition count
        (the reason the preamble repeats its base sequence).
        """
        require_int(num_repetitions, "num_repetitions", minimum=1)
        repetition_length = self.preamble_symbols.size * self.samples_per_symbol
        accumulated = None
        used = 0
        for rep in range(num_repetitions):
            offset = timing_offset_samples + rep * repetition_length
            try:
                estimate = self._estimate_unquantized(received_samples, offset)
            except ValueError:
                break
            accumulated = estimate if accumulated is None else accumulated + estimate
            used += 1
        if accumulated is None or used == 0:
            raise ValueError("not enough samples for even one repetition")
        taps = accumulated / used
        if self.quantization_bits is not None:
            peak = float(np.max(np.abs(taps))) if taps.size else 0.0
            if peak > 0:
                fmt = FixedPointFormat(total_bits=self.quantization_bits,
                                       full_scale=peak * 1.001)
                taps = fmt.quantize(taps)
        return ChannelEstimate(taps=taps, sample_rate_hz=sample_rate_hz,
                               quantization_bits=self.quantization_bits)

    def estimate_averaged_batch(self, samples, timing_offsets,
                                sample_rate_hz: float, num_repetitions: int,
                                valid_lengths=None,
                                backend=None) -> BatchedChannelEstimate:
        """Batched :meth:`estimate_averaged` over ``(packets, num_samples)``.

        ``timing_offsets`` holds each packet's coarse-acquisition timing;
        ``valid_lengths`` each row's true sample count when the batch was
        zero-padded to a common width.  Per packet, the estimate averages
        the same leading repetitions :meth:`estimate_averaged` would use
        (a repetition whose preamble copy no longer fits the buffer stops
        the averaging, exactly like the per-packet ``break``), computes
        the same zero-filled tail for taps beyond the usable window, and
        quantizes with the same per-packet full scale.  All window
        correlations run as one einsum on the selected
        :class:`~repro.sim.backends.ArrayBackend`; decisions match the
        per-packet path, floats at rounding level.
        """
        require_int(num_repetitions, "num_repetitions", minimum=1)
        backend = _resolve_backend(backend)
        xp = backend.xp

        samples = backend.asarray(samples)
        if samples.ndim != 2:
            raise ValueError("estimate_averaged_batch expects a (packets, "
                             "num_samples) batch; use estimate_averaged() "
                             "for a single buffer")
        num_packets, num_samples = (int(samples.shape[0]),
                                    int(samples.shape[1]))
        timing_offsets = np.asarray(timing_offsets, dtype=np.int64)
        if timing_offsets.shape != (num_packets,):
            raise ValueError("timing_offsets must hold one offset per packet")
        if np.any(timing_offsets < 0):
            raise ValueError("timing offsets must be non-negative")
        if valid_lengths is None:
            valid_lengths = np.full(num_packets, num_samples, dtype=np.int64)
        else:
            valid_lengths = np.asarray(valid_lengths, dtype=np.int64)

        reference = self._reference_waveform()
        ref_len = int(reference.size)
        repetition_length = self.preamble_symbols.size * self.samples_per_symbol

        # Repetition r of packet i is usable when its full reference still
        # fits inside the valid region; offsets grow monotonically, so the
        # count of usable repetitions equals the per-packet loop's leading
        # run before its break.
        rep_offsets = (timing_offsets[:, None]
                       + np.arange(num_repetitions, dtype=np.int64)
                       * repetition_length)
        used = np.sum(valid_lengths[:, None] - rep_offsets >= ref_len, axis=1)
        if np.any(used == 0):
            raise ValueError("not enough samples for even one repetition")

        # Zero out padding (and anything past each row's valid length) so
        # windows that straddle a packet's tail contribute exactly the
        # truncated sums the per-packet path computes -- then pad the batch
        # so every gathered window is in bounds.
        column = np.arange(num_samples, dtype=np.int64)
        samples = xp.where(backend.asarray(column[None, :]
                                           < valid_lengths[:, None]),
                           samples, xp.zeros((), dtype=samples.dtype))
        max_start = int(rep_offsets.max()) + self.num_taps - 1
        overhang = max(max_start + ref_len - num_samples, 0)
        if overhang:
            samples = xp.concatenate(
                (samples, xp.zeros((num_packets, overhang),
                                   dtype=samples.dtype)), axis=-1)

        # Window products reduced with sum(axis=-1): on the NumPy
        # reference this is bit-identical to the per-packet per-tap
        # np.sum dots (same pairwise reduction) — load-bearing, because
        # the 4-bit-quantized taps are full of magnitude ties and the
        # downstream selective-RAKE argsort must break them exactly like
        # the per-packet path.  (An FFT correlation here would be faster
        # but epsilon-different, and epsilon flips finger selection.)
        starts = (rep_offsets[:, :, None]
                  + np.arange(self.num_taps, dtype=np.int64)[None, None, :])
        windows = backend.gather_windows(
            samples, starts.reshape(num_packets, -1), ref_len)
        reference_conj = backend.asarray(np.conj(reference))
        reference_energy = float(np.sum(np.abs(reference) ** 2))
        raw = xp.sum(windows * reference_conj, axis=-1) / reference_energy
        raw = raw.reshape(num_packets, num_repetitions, self.num_taps)

        # Zero exactly what the per-packet loop never computes (taps past
        # each repetition's usable window), then accumulate repetitions
        # sequentially in the per-packet order — bitwise, not a masked
        # sum, for the same tie-breaking reason as above.
        available = valid_lengths[:, None] - rep_offsets - ref_len + 1
        usable = np.clip(np.minimum(available, self.num_taps), 0, None)
        tap_mask = backend.asarray(
            np.arange(self.num_taps)[None, None, :] < usable[:, :, None])
        raw = xp.where(tap_mask, raw, xp.zeros((), dtype=raw.dtype))
        accumulated = raw[:, 0]
        for repetition in range(1, num_repetitions):
            include = backend.asarray((used > repetition)[:, None])
            accumulated = xp.where(include,
                                   accumulated + raw[:, repetition],
                                   accumulated)
        taps = backend.to_numpy(accumulated) / used[:, None]

        if self.quantization_bits is not None:
            for index in range(num_packets):
                peak = float(np.max(np.abs(taps[index]))) if taps.size else 0.0
                if peak > 0:
                    fmt = FixedPointFormat(total_bits=self.quantization_bits,
                                           full_scale=peak * 1.001)
                    taps[index] = fmt.quantize(taps[index])
        return BatchedChannelEstimate(taps=taps,
                                      sample_rate_hz=sample_rate_hz,
                                      quantization_bits=self.quantization_bits)

    def _estimate_unquantized(self, received_samples,
                              timing_offset_samples: int) -> np.ndarray:
        saved = self.quantization_bits
        self.quantization_bits = None
        try:
            estimate = self.estimate(received_samples, timing_offset_samples,
                                     sample_rate_hz=1.0)
        finally:
            self.quantization_bits = saved
        return estimate.taps
