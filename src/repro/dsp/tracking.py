"""Fine timing tracking (early-late delay-locked loop).

After coarse acquisition locks to within a sample or two, a fine-tracking
loop (Fig. 1's "Fine Tracking" subsystem, Fig. 3's PLL/DLL) keeps the
correlation instant centred on the pulse despite clock drift between the
transmitter and receiver crystals.  The classic structure is an early-late
DLL: correlate slightly early and slightly late, and steer the timing toward
the balance point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["DelayLockedLoop", "TrackingResult"]


@dataclass(frozen=True)
class TrackingResult:
    """Trajectory of the tracking loop over a packet."""

    timing_offsets_samples: np.ndarray
    discriminator_outputs: np.ndarray
    final_offset_samples: float

    @property
    def rms_jitter_samples(self) -> float:
        """RMS deviation of the tracked offset around its mean (steady state)."""
        if self.timing_offsets_samples.size < 4:
            return 0.0
        steady = self.timing_offsets_samples[self.timing_offsets_samples.size // 2:]
        return float(np.std(steady))


@dataclass
class DelayLockedLoop:
    """First-order early-late DLL operating on per-symbol correlations.

    Attributes
    ----------
    early_late_spacing_samples:
        Separation between the early and late correlators (total), in
        samples.  Half of it is applied on each side of the prompt.
    loop_gain:
        First-order loop gain applied to the normalized discriminator.
    max_correction_per_symbol:
        Slew-rate limit on the per-symbol timing correction (samples).
    """

    early_late_spacing_samples: float = 2.0
    loop_gain: float = 0.1
    max_correction_per_symbol: float = 0.5

    def __post_init__(self) -> None:
        require_positive(self.early_late_spacing_samples,
                         "early_late_spacing_samples")
        require_positive(self.loop_gain, "loop_gain")
        require_positive(self.max_correction_per_symbol,
                         "max_correction_per_symbol")

    def discriminator(self, samples, template, offset: float) -> float:
        """Normalized early-late discriminator at a fractional offset.

        Positive output means the prompt correlator is early (the peak lies
        later), so the timing estimate should increase.
        """
        half = self.early_late_spacing_samples / 2.0
        early = self._correlate_at(samples, template, offset - half)
        late = self._correlate_at(samples, template, offset + half)
        denom = early + late
        if denom <= 1e-30:
            return 0.0
        return float((late - early) / denom)

    @staticmethod
    def _correlate_at(samples, template, offset: float) -> float:
        """|correlation| of the template placed at a fractional sample offset."""
        samples = np.asarray(samples)
        template = np.asarray(template)
        base = int(np.floor(offset))
        frac = offset - base
        if base < 0 or base + template.size + 1 > samples.size:
            return 0.0
        segment0 = samples[base:base + template.size]
        segment1 = samples[base + 1:base + 1 + template.size]
        interpolated = (1.0 - frac) * segment0 + frac * segment1
        return float(np.abs(np.sum(interpolated * np.conj(template))))

    def track(self, samples, template, symbol_period_samples: int,
              initial_offset: float, num_symbols: int) -> TrackingResult:
        """Run the DLL across ``num_symbols`` symbol periods.

        ``template`` is the per-symbol correlation template; the prompt
        correlator for symbol *k* sits at
        ``initial_offset + k * symbol_period_samples + correction``.
        """
        if symbol_period_samples < 1:
            raise ValueError("symbol_period_samples must be >= 1")
        if num_symbols < 1:
            raise ValueError("num_symbols must be >= 1")
        samples = np.asarray(samples)
        template = np.asarray(template)

        correction = 0.0
        offsets = np.zeros(num_symbols)
        discriminators = np.zeros(num_symbols)
        for k in range(num_symbols):
            prompt = initial_offset + k * symbol_period_samples + correction
            error = self.discriminator(samples, template, prompt)
            step = np.clip(self.loop_gain * error * self.early_late_spacing_samples,
                           -self.max_correction_per_symbol,
                           self.max_correction_per_symbol)
            correction += step
            offsets[k] = correction
            discriminators[k] = error
        return TrackingResult(timing_offsets_samples=offsets,
                              discriminator_outputs=discriminators,
                              final_offset_samples=float(correction))

    def estimate_drift_ppm(self, result: TrackingResult,
                           symbol_period_samples: int) -> float:
        """Estimate the TX/RX clock drift in ppm from the tracked trajectory.

        The DLL correction grows linearly when the two sample clocks differ;
        the slope (samples of correction per symbol) divided by the symbol
        period in samples is the fractional frequency offset.
        """
        if symbol_period_samples < 1:
            raise ValueError("symbol_period_samples must be >= 1")
        n = result.timing_offsets_samples.size
        if n < 8:
            return 0.0
        x = np.arange(n)
        slope = np.polyfit(x, result.timing_offsets_samples, 1)[0]
        return float(slope / symbol_period_samples * 1e6)
