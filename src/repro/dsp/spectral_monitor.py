"""Spectral monitoring: narrowband-interferer detection and frequency estimation.

"The digital back end detects the presence of an interferer and estimates
its frequency that may be used in the front end notch filter."  The
detector periodogram-averages blocks of ADC samples; a narrowband
interferer shows up as a spectral line far above the (flat) UWB signal +
noise floor.  The frequency estimate is refined by quadratic interpolation
around the peak bin, and the result can be handed straight to
``repro.rf.notch.AnalogNotchFilter.tune`` or to the digital notch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int, require_positive

__all__ = ["SpectralMonitorConfig", "InterfererReport", "SpectralMonitor"]


@dataclass(frozen=True)
class SpectralMonitorConfig:
    """Parameters of the spectral monitor.

    Attributes
    ----------
    fft_size:
        Size of each analysis FFT (a power of two keeps the hardware cheap).
    num_averages:
        Number of periodograms averaged before the detection test.
    detection_threshold_db:
        How far above the median spectral level a bin must rise to be
        declared an interferer.
    """

    fft_size: int = 256
    num_averages: int = 8
    detection_threshold_db: float = 12.0

    def __post_init__(self) -> None:
        require_int(self.fft_size, "fft_size", minimum=8)
        require_int(self.num_averages, "num_averages", minimum=1)
        require_positive(self.detection_threshold_db, "detection_threshold_db")


@dataclass(frozen=True)
class InterfererReport:
    """Result of one spectral-monitoring pass."""

    detected: bool
    frequency_hz: float
    power_above_floor_db: float
    spectrum_db: np.ndarray
    frequencies_hz: np.ndarray

    def frequency_error_hz(self, true_frequency_hz: float) -> float:
        """Absolute frequency-estimation error against a known interferer."""
        return float(abs(self.frequency_hz - true_frequency_hz))


class SpectralMonitor:
    """Averaged-periodogram interferer detector."""

    def __init__(self, sample_rate_hz: float,
                 config: SpectralMonitorConfig | None = None) -> None:
        require_positive(sample_rate_hz, "sample_rate_hz")
        self.sample_rate_hz = float(sample_rate_hz)
        self.config = config if config is not None else SpectralMonitorConfig()

    def _averaged_periodogram(self, samples) -> np.ndarray:
        n = self.config.fft_size
        samples = np.asarray(samples)
        num_blocks = min(self.config.num_averages, samples.size // n)
        if num_blocks == 0:
            raise ValueError(
                f"need at least {n} samples, got {samples.size}")
        window = np.hanning(n)
        accumulator = np.zeros(n)
        for block_index in range(num_blocks):
            block = samples[block_index * n:(block_index + 1) * n]
            spectrum = np.fft.fft(block * window, n=n)
            accumulator += np.abs(spectrum) ** 2
        return accumulator / num_blocks

    def _bin_frequencies(self) -> np.ndarray:
        return np.fft.fftfreq(self.config.fft_size, d=1.0 / self.sample_rate_hz)

    def analyze(self, samples) -> InterfererReport:
        """Detect and locate the strongest narrowband interferer.

        Works on complex baseband samples (frequencies are offsets from the
        sub-band centre, may be negative) or real samples (only positive
        frequencies are meaningful).
        """
        periodogram = self._averaged_periodogram(samples)
        frequencies = self._bin_frequencies()
        power_db = 10.0 * np.log10(np.maximum(periodogram, 1e-30))

        # Robust floor estimate: the median is insensitive to one strong line.
        floor_db = float(np.median(power_db))
        peak_bin = int(np.argmax(power_db))
        prominence_db = float(power_db[peak_bin] - floor_db)
        detected = prominence_db >= self.config.detection_threshold_db

        frequency = self._interpolate_peak(periodogram, frequencies, peak_bin)
        return InterfererReport(
            detected=detected,
            frequency_hz=frequency,
            power_above_floor_db=prominence_db,
            spectrum_db=power_db,
            frequencies_hz=frequencies,
        )

    def _interpolate_peak(self, periodogram: np.ndarray,
                          frequencies: np.ndarray, peak_bin: int) -> float:
        """Quadratic (parabolic) interpolation of the peak frequency."""
        n = periodogram.size
        left = periodogram[(peak_bin - 1) % n]
        center = periodogram[peak_bin]
        right = periodogram[(peak_bin + 1) % n]
        denom = left - 2.0 * center + right
        if abs(denom) < 1e-30:
            offset = 0.0
        else:
            offset = 0.5 * (left - right) / denom
            offset = float(np.clip(offset, -0.5, 0.5))
        bin_spacing = self.sample_rate_hz / n
        return float(frequencies[peak_bin] + offset * bin_spacing)

    def detection_probability(self, make_samples, num_trials: int = 50) -> float:
        """Monte-Carlo detection probability over ``num_trials`` draws.

        ``make_samples`` is a zero-argument callable returning a fresh
        sample buffer per trial (signal + interferer + noise realization).
        """
        require_int(num_trials, "num_trials", minimum=1)
        detections = 0
        for _ in range(num_trials):
            report = self.analyze(make_samples())
            if report.detected:
                detections += 1
        return detections / num_trials
