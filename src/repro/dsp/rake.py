"""RAKE receiver: recombining the energy the multipath channel spread out.

"The energy spread caused by the multipath can be compensated using a RAKE
receiver" — each RAKE finger correlates the received signal at one resolved
path delay, weights it by the (quantized) channel estimate, and the weighted
outputs are summed (maximal-ratio combining).  The gen-2 RAKE is
*programmable*: the number of fingers is a knob the adaptation policy uses
to trade power for performance.

Finger-selection policies:

* ``"arake"`` — all-RAKE: every estimated tap is a finger (upper bound).
* ``"srake"`` — selective RAKE: the L strongest taps.
* ``"prake"`` — partial RAKE: the first L taps (cheapest to search).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.channel_estimation import ChannelEstimate
from repro.utils.validation import require_int

__all__ = ["RakeFinger", "RakeReceiver", "FINGER_POLICIES"]

FINGER_POLICIES = ("arake", "srake", "prake")


@dataclass(frozen=True)
class RakeFinger:
    """One RAKE finger: a delay (in samples) and a combining weight."""

    delay_samples: int
    weight: complex

    def __post_init__(self) -> None:
        if self.delay_samples < 0:
            raise ValueError("delay_samples must be non-negative")


class RakeReceiver:
    """Maximal-ratio-combining RAKE built from a channel estimate.

    Parameters
    ----------
    channel_estimate:
        The (quantized) channel estimate from the preamble.
    num_fingers:
        How many fingers to instantiate (ignored for ``"arake"``).
    policy:
        Finger-selection policy (see module docstring).
    """

    def __init__(self, channel_estimate: ChannelEstimate,
                 num_fingers: int = 4, policy: str = "srake") -> None:
        policy = policy.lower()
        if policy not in FINGER_POLICIES:
            raise ValueError(
                f"policy must be one of {FINGER_POLICIES}, got {policy!r}")
        require_int(num_fingers, "num_fingers", minimum=1)
        self.channel_estimate = channel_estimate
        self.policy = policy
        self.num_fingers = num_fingers
        self.fingers = self._select_fingers()

    def _select_fingers(self) -> list[RakeFinger]:
        taps = self.channel_estimate.taps
        if self.policy == "arake":
            indices = np.nonzero(np.abs(taps) > 0)[0]
        elif self.policy == "srake":
            nonzero = np.nonzero(np.abs(taps) > 0)[0]
            order = nonzero[np.argsort(np.abs(taps[nonzero]))[::-1]]
            indices = np.sort(order[:self.num_fingers])
        else:  # prake
            nonzero = np.nonzero(np.abs(taps) > 0)[0]
            indices = nonzero[:self.num_fingers]
        if indices.size == 0:
            # Degenerate estimate: fall back to a single finger at delay 0.
            return [RakeFinger(delay_samples=0, weight=1.0)]
        return [RakeFinger(delay_samples=int(i), weight=complex(taps[i]))
                for i in indices]

    @property
    def num_active_fingers(self) -> int:
        """Number of fingers actually instantiated."""
        return len(self.fingers)

    def combining_weights(self) -> np.ndarray:
        """The MRC weights (conjugated channel estimates) per finger."""
        return np.asarray([np.conj(f.weight) for f in self.fingers])

    def captured_energy_fraction(self) -> float:
        """Fraction of estimated channel energy covered by the fingers."""
        total = float(np.sum(np.abs(self.channel_estimate.taps) ** 2))
        if total <= 0:
            return 0.0
        captured = float(sum(abs(f.weight) ** 2 for f in self.fingers))
        return captured / total

    def combine(self, samples, template, symbol_start_sample: int) -> complex:
        """MRC decision statistic for one symbol.

        For each finger, correlate the received samples at
        ``symbol_start_sample + finger.delay`` against the transmit
        ``template`` and weight by the conjugate channel coefficient.  The
        result's real part is the decision statistic for real alphabets.
        """
        samples = np.asarray(samples)
        template = np.asarray(template)
        statistic = 0.0 + 0.0j
        for finger in self.fingers:
            start = symbol_start_sample + finger.delay_samples
            stop = start + template.size
            if start < 0 or start >= samples.size:
                continue
            segment = samples[start:min(stop, samples.size)]
            finger_template = template[:segment.size]
            correlation = np.sum(segment * np.conj(finger_template))
            statistic += np.conj(finger.weight) * correlation
        return complex(statistic)

    def combine_stream(self, samples, template, symbol_period_samples: int,
                       first_symbol_sample: int, num_symbols: int) -> np.ndarray:
        """Decision statistics for a run of consecutive symbols."""
        require_int(symbol_period_samples, "symbol_period_samples", minimum=1)
        require_int(num_symbols, "num_symbols", minimum=1)
        statistics = np.zeros(num_symbols, dtype=complex)
        for k in range(num_symbols):
            start = first_symbol_sample + k * symbol_period_samples
            statistics[k] = self.combine(samples, template, start)
        return statistics

    def isi_taps(self, symbol_period_samples: int,
                 max_symbol_taps: int = 4) -> np.ndarray:
        """Symbol-spaced ISI taps of the RAKE output (for the MLSE).

        Thin wrapper over :func:`repro.dsp.viterbi.rake_isi_taps` using this
        receiver's fingers and the channel estimate it was built from.
        """
        from repro.dsp.viterbi import rake_isi_taps

        delays = [f.delay_samples for f in self.fingers]
        weights = [f.weight for f in self.fingers]
        return rake_isi_taps(self.channel_estimate, delays, weights,
                             symbol_period_samples,
                             max_symbol_taps=max_symbol_taps)

    def snr_gain_db_over_single_finger(self) -> float:
        """Ideal MRC SNR gain of the selected fingers over the best single finger.

        With perfect estimates, MRC SNR is proportional to the sum of
        finger powers; a single-finger receiver gets only the strongest
        finger's power.
        """
        powers = np.array([abs(f.weight) ** 2 for f in self.fingers])
        if powers.size == 0 or np.max(powers) <= 0:
            return 0.0
        return float(10.0 * np.log10(np.sum(powers) / np.max(powers)))
