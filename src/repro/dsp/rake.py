"""RAKE receiver: recombining the energy the multipath channel spread out.

"The energy spread caused by the multipath can be compensated using a RAKE
receiver" — each RAKE finger correlates the received signal at one resolved
path delay, weights it by the (quantized) channel estimate, and the weighted
outputs are summed (maximal-ratio combining).  The gen-2 RAKE is
*programmable*: the number of fingers is a knob the adaptation policy uses
to trade power for performance.

Finger-selection policies:

* ``"arake"`` — all-RAKE: every estimated tap is a finger (upper bound).
* ``"srake"`` — selective RAKE: the L strongest taps.
* ``"prake"`` — partial RAKE: the first L taps (cheapest to search).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.channel_estimation import ChannelEstimate
from repro.dsp.correlator import _resolve_backend
from repro.utils.validation import require_int

__all__ = ["RakeFinger", "RakeReceiver", "FINGER_POLICIES",
           "combine_streams_batch", "finger_arrays"]

FINGER_POLICIES = ("arake", "srake", "prake")


def finger_arrays(receivers) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-packet RAKE fingers into padded ``(delays, weights)`` arrays.

    ``receivers`` is one :class:`RakeReceiver` per packet; the result is a
    pair of ``(packets, max_fingers)`` arrays, rows padded with zero-weight
    fingers at delay 0 (a zero weight contributes exactly nothing to the
    combined statistic, so padding is free).  This is the record layout
    :func:`combine_streams_batch` consumes.
    """
    receivers = list(receivers)
    if not receivers:
        raise ValueError("need at least one RakeReceiver")
    width = max(len(receiver.fingers) for receiver in receivers)
    delays = np.zeros((len(receivers), width), dtype=np.int64)
    weights = np.zeros((len(receivers), width), dtype=complex)
    for index, receiver in enumerate(receivers):
        for slot, finger in enumerate(receiver.fingers):
            delays[index, slot] = finger.delay_samples
            weights[index, slot] = finger.weight
    return delays, weights


def combine_streams_batch(samples, finger_delays, finger_weights, template,
                          symbol_period_samples: int, first_symbol_samples,
                          num_symbols: int, valid_lengths=None,
                          backend=None) -> np.ndarray:
    """Batched :meth:`RakeReceiver.combine_stream` over a packet batch.

    Parameters mirror the per-packet call with one leading batch axis:
    ``samples`` is ``(packets, num_samples)`` (rows zero-padded to a
    common width, true counts in ``valid_lengths``), ``finger_delays`` /
    ``finger_weights`` are the padded ``(packets, max_fingers)`` arrays
    from :func:`finger_arrays`, and ``first_symbol_samples`` holds each
    packet's first symbol start (acquisition timing shifts it per packet).
    Every finger x symbol correlation of every packet is gathered and
    reduced in one einsum on the selected
    :class:`~repro.sim.backends.ArrayBackend`.  Fingers that start past a
    packet's valid samples contribute exactly zero — the batched
    equivalent of the per-packet skip/truncate — so decisions match the
    per-packet loop, floats at rounding level.
    """
    require_int(symbol_period_samples, "symbol_period_samples", minimum=1)
    require_int(num_symbols, "num_symbols", minimum=1)
    backend = _resolve_backend(backend)
    xp = backend.xp

    samples = backend.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("combine_streams_batch expects a (packets, "
                         "num_samples) batch; use combine_stream() for one")
    num_packets, num_samples = int(samples.shape[0]), int(samples.shape[1])
    finger_delays = np.asarray(finger_delays, dtype=np.int64)
    finger_weights = np.asarray(finger_weights)
    first_symbol_samples = np.asarray(first_symbol_samples, dtype=np.int64)
    if finger_delays.shape != finger_weights.shape \
            or finger_delays.ndim != 2 \
            or finger_delays.shape[0] != num_packets:
        raise ValueError("finger_delays and finger_weights must both be "
                         "(packets, max_fingers)")
    if np.any(finger_delays < 0):
        raise ValueError("finger delays must be non-negative")
    if first_symbol_samples.shape != (num_packets,):
        raise ValueError("first_symbol_samples must hold one start per packet")
    template = np.asarray(template)
    length = int(template.size)

    if valid_lengths is not None:
        valid_lengths = np.asarray(valid_lengths, dtype=np.int64)
        column = np.arange(num_samples, dtype=np.int64)
        samples = xp.where(backend.asarray(column[None, :]
                                           < valid_lengths[:, None]),
                           samples, xp.zeros((), dtype=samples.dtype))

    starts = (first_symbol_samples[:, None, None]
              + finger_delays[:, :, None]
              + np.arange(num_symbols, dtype=np.int64)[None, None, :]
              * symbol_period_samples)
    overhang = max(int(starts.max()) + length - num_samples, 0)
    if overhang:
        samples = xp.concatenate(
            (samples, xp.zeros((num_packets, overhang),
                               dtype=samples.dtype)), axis=-1)

    windows = backend.gather_windows(samples,
                                     starts.reshape(num_packets, -1), length)
    max_fingers = finger_delays.shape[1]
    windows = windows.reshape(num_packets, max_fingers, num_symbols, length)
    correlations = xp.einsum("pfkl,l->pfk", windows,
                             xp.conj(backend.asarray(template)))
    statistics = xp.einsum("pf,pfk->pk",
                           xp.conj(backend.asarray(finger_weights)),
                           correlations)
    return np.asarray(backend.to_numpy(statistics), dtype=complex)


@dataclass(frozen=True)
class RakeFinger:
    """One RAKE finger: a delay (in samples) and a combining weight."""

    delay_samples: int
    weight: complex

    def __post_init__(self) -> None:
        if self.delay_samples < 0:
            raise ValueError("delay_samples must be non-negative")


class RakeReceiver:
    """Maximal-ratio-combining RAKE built from a channel estimate.

    Parameters
    ----------
    channel_estimate:
        The (quantized) channel estimate from the preamble.
    num_fingers:
        How many fingers to instantiate (ignored for ``"arake"``).
    policy:
        Finger-selection policy (see module docstring).
    """

    def __init__(self, channel_estimate: ChannelEstimate,
                 num_fingers: int = 4, policy: str = "srake") -> None:
        policy = policy.lower()
        if policy not in FINGER_POLICIES:
            raise ValueError(
                f"policy must be one of {FINGER_POLICIES}, got {policy!r}")
        require_int(num_fingers, "num_fingers", minimum=1)
        self.channel_estimate = channel_estimate
        self.policy = policy
        self.num_fingers = num_fingers
        self.fingers = self._select_fingers()

    def _select_fingers(self) -> list[RakeFinger]:
        taps = self.channel_estimate.taps
        if self.policy == "arake":
            indices = np.nonzero(np.abs(taps) > 0)[0]
        elif self.policy == "srake":
            nonzero = np.nonzero(np.abs(taps) > 0)[0]
            order = nonzero[np.argsort(np.abs(taps[nonzero]))[::-1]]
            indices = np.sort(order[:self.num_fingers])
        else:  # prake
            nonzero = np.nonzero(np.abs(taps) > 0)[0]
            indices = nonzero[:self.num_fingers]
        if indices.size == 0:
            # Degenerate estimate: fall back to a single finger at delay 0.
            return [RakeFinger(delay_samples=0, weight=1.0)]
        return [RakeFinger(delay_samples=int(i), weight=complex(taps[i]))
                for i in indices]

    @property
    def num_active_fingers(self) -> int:
        """Number of fingers actually instantiated."""
        return len(self.fingers)

    def combining_weights(self) -> np.ndarray:
        """The MRC weights (conjugated channel estimates) per finger."""
        return np.asarray([np.conj(f.weight) for f in self.fingers])

    def captured_energy_fraction(self) -> float:
        """Fraction of estimated channel energy covered by the fingers."""
        total = float(np.sum(np.abs(self.channel_estimate.taps) ** 2))
        if total <= 0:
            return 0.0
        captured = float(sum(abs(f.weight) ** 2 for f in self.fingers))
        return captured / total

    def combine(self, samples, template, symbol_start_sample: int) -> complex:
        """MRC decision statistic for one symbol.

        For each finger, correlate the received samples at
        ``symbol_start_sample + finger.delay`` against the transmit
        ``template`` and weight by the conjugate channel coefficient.  The
        result's real part is the decision statistic for real alphabets.
        """
        samples = np.asarray(samples)
        template = np.asarray(template)
        statistic = 0.0 + 0.0j
        for finger in self.fingers:
            start = symbol_start_sample + finger.delay_samples
            stop = start + template.size
            if start < 0 or start >= samples.size:
                continue
            segment = samples[start:min(stop, samples.size)]
            finger_template = template[:segment.size]
            correlation = np.sum(segment * np.conj(finger_template))
            statistic += np.conj(finger.weight) * correlation
        return complex(statistic)

    def combine_stream(self, samples, template, symbol_period_samples: int,
                       first_symbol_sample: int, num_symbols: int) -> np.ndarray:
        """Decision statistics for a run of consecutive symbols."""
        require_int(symbol_period_samples, "symbol_period_samples", minimum=1)
        require_int(num_symbols, "num_symbols", minimum=1)
        statistics = np.zeros(num_symbols, dtype=complex)
        for k in range(num_symbols):
            start = first_symbol_sample + k * symbol_period_samples
            statistics[k] = self.combine(samples, template, start)
        return statistics

    def isi_taps(self, symbol_period_samples: int,
                 max_symbol_taps: int = 4) -> np.ndarray:
        """Symbol-spaced ISI taps of the RAKE output (for the MLSE).

        Thin wrapper over :func:`repro.dsp.viterbi.rake_isi_taps` using this
        receiver's fingers and the channel estimate it was built from.
        """
        from repro.dsp.viterbi import rake_isi_taps

        delays = [f.delay_samples for f in self.fingers]
        weights = [f.weight for f in self.fingers]
        return rake_isi_taps(self.channel_estimate, delays, weights,
                             symbol_period_samples,
                             max_symbol_taps=max_symbol_taps)

    def snr_gain_db_over_single_finger(self) -> float:
        """Ideal MRC SNR gain of the selected fingers over the best single finger.

        With perfect estimates, MRC SNR is proportional to the sum of
        finger powers; a single-finger receiver gets only the strongest
        finger's power.
        """
        powers = np.array([abs(f.weight) ** 2 for f in self.fingers])
        if powers.size == 0 or np.max(powers) <= 0:
            return 0.0
        return float(10.0 * np.log10(np.sum(powers) / np.max(powers)))
