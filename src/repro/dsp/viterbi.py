"""Viterbi demodulator (MLSE equalizer) for inter-symbol interference.

"The inter-symbol interference (ISI) due to multipath can be addressed with
a Viterbi demodulator."  When the channel's delay spread exceeds the symbol
period, the RAKE's per-symbol statistics are corrupted by neighbouring
symbols.  The maximum-likelihood sequence estimator (MLSE) runs a Viterbi
search over the symbol alphabet with the symbol-spaced equivalent channel as
its trellis, which is exactly the programmable Viterbi machine in the gen-2
back end.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.channel_estimation import ChannelEstimate
from repro.utils.validation import require_int

__all__ = ["MLSEEqualizer", "symbol_spaced_channel", "rake_isi_taps",
           "equalize_to_bits_batch"]


def rake_isi_taps(channel_estimate: ChannelEstimate,
                  finger_delays, finger_weights,
                  symbol_period_samples: int,
                  max_symbol_taps: int = 4) -> np.ndarray:
    """Symbol-spaced ISI taps as seen at the output of a RAKE combiner.

    The RAKE statistic for symbol ``k`` is (up to a common scale)
    ``sum_f conj(w_f) * sum_j a_j * h[d_f + (k - j) T]``, so the normalized
    postcursor ISI coefficients are

    ``g_l = sum_f conj(w_f) h[d_f + l T] / sum_f conj(w_f) h[d_f]``.

    ``g_0`` is 1 by construction; the returned vector ``[g_0, g_1, ...]``
    feeds :class:`MLSEEqualizer` directly.  Precursor terms are neglected
    (the timing reference is the strongest path, so energy arriving before
    it is small by construction).
    """
    require_int(symbol_period_samples, "symbol_period_samples", minimum=1)
    require_int(max_symbol_taps, "max_symbol_taps", minimum=1)
    finger_delays = np.asarray(finger_delays, dtype=np.int64).ravel()
    finger_weights = np.asarray(finger_weights).ravel()
    if finger_delays.size != finger_weights.size:
        raise ValueError("finger_delays and finger_weights must match")
    h = channel_estimate.taps
    taps = np.zeros(max_symbol_taps, dtype=complex)
    for l in range(max_symbol_taps):
        total = 0.0 + 0.0j
        for delay, weight in zip(finger_delays, finger_weights):
            index = delay + l * symbol_period_samples
            if 0 <= index < h.size:
                total += np.conj(weight) * h[index]
        taps[l] = total
    if abs(taps[0]) <= 0:
        return np.array([1.0 + 0.0j])
    taps = taps / taps[0]
    # Drop trailing taps that carry no meaningful energy.
    keep = max_symbol_taps
    while keep > 1 and abs(taps[keep - 1]) < 0.05:
        keep -= 1
    return taps[:keep]


def symbol_spaced_channel(channel_estimate: ChannelEstimate,
                          symbol_period_samples: int,
                          max_symbol_taps: int = 4) -> np.ndarray:
    """Collapse a sample-spaced channel estimate to symbol-spaced ISI taps.

    Tap ``l`` is the correlation mass of the channel estimate in the window
    ``[l*T, (l+1)*T)`` (T = symbol period in samples).  The result drives
    the MLSE trellis: ``max_symbol_taps`` of memory covers a delay spread of
    ``max_symbol_taps`` symbol periods.
    """
    require_int(symbol_period_samples, "symbol_period_samples", minimum=1)
    require_int(max_symbol_taps, "max_symbol_taps", minimum=1)
    taps = channel_estimate.taps
    num_symbol_taps = min(
        max_symbol_taps,
        int(np.ceil(taps.size / symbol_period_samples)))
    collapsed = np.zeros(num_symbol_taps, dtype=complex)
    for l in range(num_symbol_taps):
        window = taps[l * symbol_period_samples:(l + 1) * symbol_period_samples]
        collapsed[l] = np.sum(np.abs(window) ** 2)
    # Normalize so the main tap has unit weight (statistics are scaled by
    # the RAKE which already applies the channel magnitude).
    peak = np.max(np.abs(collapsed))
    if peak > 0:
        collapsed = collapsed / peak
    return collapsed


class MLSEEqualizer:
    """Viterbi sequence detector over a symbol-spaced ISI channel.

    Parameters
    ----------
    isi_taps:
        Symbol-spaced channel taps ``h[0..L-1]`` (h[0] is the desired
        symbol's weight).  The trellis has ``len(alphabet)^(L-1)`` states.
    alphabet:
        The symbol alphabet (e.g. ``(-1.0, +1.0)`` for BPSK).
    """

    def __init__(self, isi_taps, alphabet=(-1.0, 1.0)) -> None:
        self.isi_taps = np.asarray(isi_taps, dtype=complex).ravel()
        if self.isi_taps.size == 0:
            raise ValueError("isi_taps must not be empty")
        self.alphabet = tuple(complex(a) for a in alphabet)
        if len(self.alphabet) < 2:
            raise ValueError("alphabet needs at least two symbols")
        self.memory = self.isi_taps.size - 1
        self.num_states = len(self.alphabet) ** self.memory
        if self.num_states > 4096:
            raise ValueError(
                "trellis too large; reduce ISI taps or alphabet size")

    def _state_symbols(self, state: int) -> list[complex]:
        """Decode a state index into the last ``memory`` symbols (newest first)."""
        symbols = []
        m = len(self.alphabet)
        for _ in range(self.memory):
            symbols.append(self.alphabet[state % m])
            state //= m
        return symbols

    def _next_state(self, state: int, symbol_index: int) -> int:
        """State after emitting ``symbol_index`` (newest symbol in low digit)."""
        m = len(self.alphabet)
        if self.memory == 0:
            return 0
        return (state * m + symbol_index) % (m ** self.memory)

    def _expected(self, state: int, symbol: complex) -> complex:
        """Expected noiseless statistic for (state, new symbol)."""
        value = self.isi_taps[0] * symbol
        previous = self._state_symbols(state)
        for tap_index in range(1, self.isi_taps.size):
            value += self.isi_taps[tap_index] * previous[tap_index - 1]
        return value

    def equalize(self, statistics) -> np.ndarray:
        """Return the maximum-likelihood symbol sequence for the statistics.

        ``statistics`` are the per-symbol RAKE (or matched-filter) outputs,
        already scaled so a noiseless isolated symbol ``a`` produces
        approximately ``a`` (the library's receivers normalize by the
        template and channel energy).
        """
        statistics = np.asarray(statistics, dtype=complex).ravel()
        num_symbols = statistics.size
        if num_symbols == 0:
            return np.zeros(0, dtype=complex)

        metrics = np.full(self.num_states, np.inf)
        metrics[0] = 0.0
        survivors = np.zeros((num_symbols, self.num_states, 2), dtype=np.int64)

        for t in range(num_symbols):
            new_metrics = np.full(self.num_states, np.inf)
            new_survivors = np.zeros((self.num_states, 2), dtype=np.int64)
            for state in range(self.num_states):
                if not np.isfinite(metrics[state]):
                    continue
                for symbol_index, symbol in enumerate(self.alphabet):
                    expected = self._expected(state, symbol)
                    branch = abs(statistics[t] - expected) ** 2
                    candidate = metrics[state] + branch
                    nxt = self._next_state(state, symbol_index)
                    if candidate < new_metrics[nxt]:
                        new_metrics[nxt] = candidate
                        new_survivors[nxt] = (state, symbol_index)
            metrics = new_metrics
            survivors[t] = new_survivors

        state = int(np.argmin(metrics))
        decided = np.zeros(num_symbols, dtype=complex)
        for t in range(num_symbols - 1, -1, -1):
            prev_state, symbol_index = survivors[t, state]
            decided[t] = self.alphabet[symbol_index]
            state = int(prev_state)
        return decided

    def equalize_to_bits(self, statistics) -> np.ndarray:
        """Equalize and map the BPSK alphabet back to bits (+1 -> 1, -1 -> 0)."""
        symbols = self.equalize(statistics)
        return (np.real(symbols) > 0).astype(np.int64)


def equalize_to_bits_batch(equalizers, statistics_rows) -> list[np.ndarray]:
    """Batched :meth:`MLSEEqualizer.equalize_to_bits` over many packets.

    ``equalizers`` holds one per-packet :class:`MLSEEqualizer` (each built
    from that packet's own ISI taps) and ``statistics_rows`` the matching
    per-symbol statistics.  Packets sharing a trellis structure — same
    alphabet, memory, and symbol count — run as one vectorized
    add-compare-select pass; the candidate scan order and argmin
    tie-breaking replicate the scalar :meth:`~MLSEEqualizer.equalize`
    loop, so each packet's decided bits match its per-packet call.
    """
    equalizers = list(equalizers)
    statistics_rows = [np.asarray(row, dtype=complex).ravel()
                       for row in statistics_rows]
    if len(equalizers) != len(statistics_rows):
        raise ValueError("need one statistics row per equalizer")
    results: list[np.ndarray | None] = [None] * len(equalizers)

    groups: dict[tuple, list[int]] = {}
    for index, (equalizer, row) in enumerate(zip(equalizers,
                                                 statistics_rows)):
        key = (equalizer.alphabet, equalizer.memory, row.size)
        groups.setdefault(key, []).append(index)

    for (alphabet, memory, num_symbols), members in groups.items():
        if num_symbols == 0:
            for index in members:
                results[index] = np.zeros(0, dtype=np.int64)
            continue
        reference = equalizers[members[0]]
        num_states = reference.num_states
        num_symbols_alpha = len(alphabet)
        alphabet_arr = np.asarray(alphabet, dtype=complex)

        # Incoming transitions per next state, in the scalar loop's
        # (state-major, symbol-minor) scan order for exact tie-breaking.
        incoming: list[list[tuple[int, int]]] = [[]
                                                 for _ in range(num_states)]
        for state in range(num_states):
            for symbol_index in range(num_symbols_alpha):
                incoming[reference._next_state(state, symbol_index)].append(
                    (state, symbol_index))
        width = max(len(entry) for entry in incoming)
        in_prev = np.zeros((num_states, width), dtype=np.int64)
        in_sym = np.zeros((num_states, width), dtype=np.int64)
        in_valid = np.zeros((num_states, width), dtype=bool)
        for state, entry in enumerate(incoming):
            for slot, (prev, symbol_index) in enumerate(entry):
                in_prev[state, slot] = prev
                in_sym[state, slot] = symbol_index
                in_valid[state, slot] = True

        # Expected noiseless statistics per (packet, state, new symbol).
        state_history = np.asarray(
            [reference._state_symbols(state) for state in range(num_states)],
            dtype=complex).reshape(num_states, memory)
        group_size = len(members)
        taps = np.zeros((group_size, memory + 1), dtype=complex)
        for row_index, index in enumerate(members):
            taps[row_index] = equalizers[index].isi_taps
        expected = (taps[:, 0, None, None] * alphabet_arr[None, None, :]
                    + (state_history @ taps[:, 1:].T).T[:, :, None])

        stats = np.asarray([statistics_rows[index] for index in members])
        metrics = np.full((group_size, num_states), np.inf)
        metrics[:, 0] = 0.0
        surv_prev = np.zeros((num_symbols, group_size, num_states),
                             dtype=np.int64)
        surv_sym = np.zeros((num_symbols, group_size, num_states),
                            dtype=np.int64)
        state_index = np.arange(num_states)[None, :]
        # All branch metrics up front, pre-gathered per incoming
        # transition, so the sequential ACS loop touches only small
        # per-step arrays.
        branch_all = np.abs(stats[:, :, None, None]
                            - expected[:, None, :, :]) ** 2
        branch_incoming = branch_all[:, :, in_prev, in_sym]
        if not in_valid.all():
            branch_incoming[:, :, ~in_valid] = np.inf
        for t in range(num_symbols):
            candidates = metrics[:, in_prev] + branch_incoming[:, t]
            choice = np.argmin(candidates, axis=-1)
            metrics = np.min(candidates, axis=-1)
            surv_prev[t] = in_prev[state_index, choice]
            surv_sym[t] = in_sym[state_index, choice]

        state = np.argmin(metrics, axis=-1)
        decided = np.zeros((group_size, num_symbols), dtype=np.int64)
        rows = np.arange(group_size)
        for t in range(num_symbols - 1, -1, -1):
            decided[:, t] = surv_sym[t, rows, state]
            state = surv_prev[t, rows, state]
        bits = (np.real(alphabet_arr[decided]) > 0).astype(np.int64)
        for row_index, index in enumerate(members):
            results[index] = bits[row_index]
    return results
