"""Digital adaptive notch filter.

Complement of the analog RF notch: once the spectral monitor has estimated
the interferer frequency, the back end can also (or instead) remove the
interferer digitally with an adaptive complex notch.  Two flavours:

* :class:`DigitalNotchFilter` — a fixed-coefficient complex one-pole notch
  placed at the estimated frequency.
* :class:`AdaptiveNotchCanceller` — an LMS canceller that regresses the
  received samples onto a locally generated complex exponential at the
  estimated frequency and subtracts the fit, which tolerates small
  frequency-estimation errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["DigitalNotchFilter", "AdaptiveNotchCanceller"]


@dataclass
class DigitalNotchFilter:
    """Complex single-notch IIR: ``H(z) = (1 - e^{j w0} z^-1) / (1 - r e^{j w0} z^-1)``.

    ``pole_radius`` (r) close to 1 gives a narrow notch.
    """

    notch_frequency_hz: float
    sample_rate_hz: float
    pole_radius: float = 0.995

    def __post_init__(self) -> None:
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        if not 0.0 < self.pole_radius < 1.0:
            raise ValueError("pole_radius must be in (0, 1)")

    @property
    def normalized_frequency_rad(self) -> float:
        """Notch frequency in radians/sample."""
        return 2.0 * np.pi * self.notch_frequency_hz / self.sample_rate_hz

    def apply(self, samples) -> np.ndarray:
        """Filter complex (or real) samples through the notch."""
        samples = np.asarray(samples, dtype=complex)
        w0 = self.normalized_frequency_rad
        zero = np.exp(1j * w0)
        pole = self.pole_radius * zero
        out = np.zeros_like(samples)
        prev_in = 0.0 + 0.0j
        prev_out = 0.0 + 0.0j
        for n, x in enumerate(samples):
            y = x - zero * prev_in + pole * prev_out
            out[n] = y
            prev_in = x
            prev_out = y
        return out

    def rejection_at_db(self, frequency_hz: float) -> float:
        """Attenuation (positive dB) at ``frequency_hz``."""
        w = 2.0 * np.pi * frequency_hz / self.sample_rate_hz
        z = np.exp(1j * w)
        w0 = self.normalized_frequency_rad
        numerator = 1.0 - np.exp(1j * w0) / z
        denominator = 1.0 - self.pole_radius * np.exp(1j * w0) / z
        magnitude = abs(numerator / denominator)
        if magnitude <= 0:
            return float("inf")
        return float(-20.0 * np.log10(magnitude))


@dataclass
class AdaptiveNotchCanceller:
    """LMS interference canceller referenced to a local complex exponential.

    The canceller synthesizes ``e^{j 2 pi f_est t}``, adapts a single complex
    weight so the reference matches the interferer component of the input,
    and subtracts it.  Convergence takes a few hundred samples at the
    default step size.
    """

    interferer_frequency_hz: float
    sample_rate_hz: float
    step_size: float = 0.01

    def __post_init__(self) -> None:
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        require_positive(self.step_size, "step_size")

    def cancel(self, samples) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(cleaned, weight_trajectory)``."""
        samples = np.asarray(samples, dtype=complex)
        n = np.arange(samples.size)
        reference = np.exp(1j * 2.0 * np.pi * self.interferer_frequency_hz
                           * n / self.sample_rate_hz)
        weight = 0.0 + 0.0j
        cleaned = np.zeros_like(samples)
        weights = np.zeros(samples.size, dtype=complex)
        # Normalize the step by the (unit) reference power for stability.
        mu = self.step_size
        for i in range(samples.size):
            estimate = weight * reference[i]
            error = samples[i] - estimate
            cleaned[i] = error
            weight = weight + mu * error * np.conj(reference[i])
            weights[i] = weight
        return cleaned, weights

    def steady_state_rejection_db(self, samples) -> float:
        """Measured interferer-power reduction over the second half of the buffer."""
        cleaned, _ = self.cancel(samples)
        half = samples.size // 2
        before = float(np.mean(np.abs(np.asarray(samples)[half:]) ** 2))
        after = float(np.mean(np.abs(cleaned[half:]) ** 2))
        if after <= 0:
            return float("inf")
        return float(10.0 * np.log10(before / after))
