"""Parallelization / retiming of the high-rate ADC sample stream.

"The back end requires parallelization to reduce the packet synchronization
time and to process the large data rate provided by the ADC."  At 2 GSPS the
sample stream is far faster than a 0.18 um digital clock, so the silicon
de-multiplexes it into N parallel lanes running at rate/N (Fig. 1's
"Parallellizer", Fig. 3's "Retiming Block") and instantiates N copies of the
search hardware.

The model captures the two things that matter at system level:

* the de-interleave / re-interleave bookkeeping (so bit-true processing can
  be run per lane), and
* the latency arithmetic: with ``parallelism`` lanes each evaluating one
  timing hypothesis per back-end clock, searching ``num_hypotheses``
  hypotheses takes ``ceil(num_hypotheses / parallelism)`` clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int, require_positive

__all__ = ["Parallelizer", "acquisition_clock_cycles", "acquisition_time_s"]


def acquisition_clock_cycles(num_hypotheses: int, parallelism: int,
                             integrations_per_hypothesis: int = 1) -> int:
    """Back-end clock cycles to evaluate every timing hypothesis.

    Each lane evaluates one hypothesis at a time and each hypothesis needs
    ``integrations_per_hypothesis`` clock cycles of accumulation.
    """
    require_int(num_hypotheses, "num_hypotheses", minimum=1)
    require_int(parallelism, "parallelism", minimum=1)
    require_int(integrations_per_hypothesis, "integrations_per_hypothesis",
                minimum=1)
    rounds = int(np.ceil(num_hypotheses / parallelism))
    return rounds * integrations_per_hypothesis


def acquisition_time_s(num_hypotheses: int, parallelism: int,
                       backend_clock_hz: float,
                       integrations_per_hypothesis: int = 1) -> float:
    """Wall-clock acquisition search time implied by the parallelism."""
    require_positive(backend_clock_hz, "backend_clock_hz")
    cycles = acquisition_clock_cycles(num_hypotheses, parallelism,
                                      integrations_per_hypothesis)
    return cycles / backend_clock_hz


@dataclass
class Parallelizer:
    """De-multiplex a sample stream into ``num_lanes`` polyphase lanes.

    Lane ``k`` receives samples ``k, k + N, k + 2N, ...`` — exactly the
    streams a time-interleaved ADC naturally produces (the gen-1 flash ADC
    "performs an initial 4-way parallelization of the signal"), possibly
    further split for the back end.
    """

    num_lanes: int
    input_rate_hz: float

    def __post_init__(self) -> None:
        require_int(self.num_lanes, "num_lanes", minimum=1)
        require_positive(self.input_rate_hz, "input_rate_hz")

    @property
    def lane_rate_hz(self) -> float:
        """Clock rate each lane runs at."""
        return self.input_rate_hz / self.num_lanes

    def split(self, samples) -> list[np.ndarray]:
        """De-multiplex samples into lanes (last partial frame is dropped)."""
        samples = np.asarray(samples)
        usable = (samples.size // self.num_lanes) * self.num_lanes
        frame = samples[:usable].reshape(-1, self.num_lanes)
        return [frame[:, lane].copy() for lane in range(self.num_lanes)]

    def merge(self, lanes) -> np.ndarray:
        """Re-interleave per-lane streams back into one sample stream."""
        lanes = [np.asarray(lane) for lane in lanes]
        if len(lanes) != self.num_lanes:
            raise ValueError(
                f"expected {self.num_lanes} lanes, got {len(lanes)}")
        length = min(lane.size for lane in lanes)
        is_complex = any(np.iscomplexobj(lane) for lane in lanes)
        merged = np.zeros(length * self.num_lanes,
                          dtype=complex if is_complex else float)
        for index, lane in enumerate(lanes):
            merged[index::self.num_lanes] = lane[:length]
        return merged

    def search_speedup(self) -> float:
        """Acquisition-latency speed-up over a single-lane search."""
        return float(self.num_lanes)
