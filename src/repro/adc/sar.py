"""Successive-approximation-register (SAR) ADC — the gen-2 converter.

The gen-2 receiver digitizes I and Q with "two 5-bit successive
approximation register ADCs".  A SAR converter resolves one bit per clock by
binary search against a capacitive DAC; its characteristic impairments are
capacitor mismatch (bit-weight errors), comparator noise, and the conversion
latency of ``bits`` clock cycles per sample.

:class:`QuadratureSARADC` pairs two SAR converters for the I/Q paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require_int, require_non_negative, require_positive

__all__ = ["SARADC", "QuadratureSARADC"]


@dataclass
class SARADC:
    """Behavioural SAR ADC with bit-weight mismatch and comparator noise.

    Attributes
    ----------
    bits:
        Resolution (the paper's gen-2 uses 5).
    full_scale:
        Input range ``[-full_scale, +full_scale]``.
    sample_rate_hz:
        Nominal sampling rate (>500 MSps in the paper).
    capacitor_mismatch_std:
        Relative (fractional) mismatch of each binary-weighted capacitor.
    comparator_noise_std:
        RMS input-referred comparator noise in volts, applied per bit trial.
    """

    bits: int = 5
    full_scale: float = 1.0
    sample_rate_hz: float = 500e6
    capacitor_mismatch_std: float = 0.0
    comparator_noise_std: float = 0.0
    rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require_int(self.bits, "bits", minimum=1)
        require_positive(self.full_scale, "full_scale")
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        require_non_negative(self.capacitor_mismatch_std, "capacitor_mismatch_std")
        require_non_negative(self.comparator_noise_std, "comparator_noise_std")
        rng = self.rng if self.rng is not None else np.random.default_rng()
        # Ideal bit weights are full_scale/2, full_scale/4, ... ; mismatch
        # perturbs each weight by a zero-mean relative error.
        ideal_weights = self.full_scale / (2.0 ** np.arange(1, self.bits + 1))
        if self.capacitor_mismatch_std > 0:
            errors = rng.normal(0.0, self.capacitor_mismatch_std, size=self.bits)
        else:
            errors = np.zeros(self.bits)
        self._weights = ideal_weights * (1.0 + errors)
        self._comparator_rng = (self.rng if self.rng is not None
                                else np.random.default_rng())

    @property
    def num_levels(self) -> int:
        """Number of output codes."""
        return 1 << self.bits

    @property
    def step(self) -> float:
        """Nominal LSB size."""
        return 2.0 * self.full_scale / self.num_levels

    @property
    def conversion_time_s(self) -> float:
        """Time to resolve one sample (``bits`` comparator decisions).

        The internal bit clock runs at ``bits`` times the sample rate, so a
        full conversion occupies one sample period.
        """
        return 1.0 / self.sample_rate_hz

    @property
    def bit_clock_rate_hz(self) -> float:
        """Rate of the internal successive-approximation bit clock."""
        return self.bits * self.sample_rate_hz

    def draw_comparator_noise(self, rng: np.random.Generator,
                              shape) -> np.ndarray | None:
        """Pre-draw the comparator noise one :meth:`convert_codes` call of
        the given input ``shape`` would consume, in the same per-bit order.

        Returns a ``(bits, *shape)`` array for the ``noise=`` injection
        parameter, or ``None`` when comparator noise is disabled.  Batched
        converters use this to keep a shared random stream consumed in
        per-packet order while running the conversions as one batch.
        """
        if self.comparator_noise_std <= 0:
            return None
        return np.stack([rng.normal(0.0, self.comparator_noise_std,
                                    size=shape)
                         for _ in range(self.bits)])

    def convert_codes(self, x, rng: np.random.Generator | None = None,
                      noise: np.ndarray | None = None) -> np.ndarray:
        """Run the successive-approximation search on each sample.

        Returns unsigned codes in ``[0, 2^bits - 1]``.  ``noise``
        (optional, shape ``(bits, *x.shape)``) injects pre-drawn
        comparator noise instead of drawing from ``rng`` — see
        :meth:`draw_comparator_noise`.
        """
        x = np.atleast_1d(np.asarray(x, dtype=float))
        if rng is None:
            rng = self._comparator_rng
        codes = np.zeros(x.shape, dtype=np.int64)
        # The SAR search: start from -full_scale and add bit weights MSB-first,
        # keeping a bit when the trial level stays below the input.
        estimate = np.full(x.shape, -self.full_scale)
        for bit_index in range(self.bits):
            weight = self._weights[bit_index]
            trial = estimate + 2.0 * weight
            if noise is not None:
                bit_noise = noise[bit_index]
            elif self.comparator_noise_std > 0:
                bit_noise = rng.normal(0.0, self.comparator_noise_std,
                                       size=x.shape)
            else:
                bit_noise = 0.0
            keep = (x + bit_noise) >= trial
            estimate = np.where(keep, trial, estimate)
            codes = codes | (keep.astype(np.int64) << (self.bits - 1 - bit_index))
        return codes

    def codes_to_values(self, codes) -> np.ndarray:
        """Nominal reconstruction values (ideal bin centres)."""
        codes = np.asarray(codes, dtype=np.int64)
        return (codes.astype(float) + 0.5) * self.step - self.full_scale

    def convert(self, x, rng: np.random.Generator | None = None,
                noise: np.ndarray | None = None) -> np.ndarray:
        """Convert and reconstruct real input samples.

        ``noise`` injects pre-drawn comparator noise (see
        :meth:`draw_comparator_noise`).
        """
        x = np.asarray(x, dtype=float)
        scalar = x.ndim == 0
        values = self.codes_to_values(self.convert_codes(x, rng=rng,
                                                         noise=noise))
        return float(values[0]) if scalar else values


@dataclass
class QuadratureSARADC:
    """The gen-2 I/Q converter pair: two SAR ADCs sharing a sampling clock."""

    i_adc: SARADC = field(default_factory=SARADC)
    q_adc: SARADC = field(default_factory=SARADC)

    @classmethod
    def matched_pair(cls, bits: int = 5, full_scale: float = 1.0,
                     sample_rate_hz: float = 500e6,
                     capacitor_mismatch_std: float = 0.0,
                     comparator_noise_std: float = 0.0,
                     rng: np.random.Generator | None = None
                     ) -> "QuadratureSARADC":
        """Build an I/Q pair with independent mismatch draws."""
        if rng is None:
            rng = np.random.default_rng()
        make = lambda: SARADC(bits=bits, full_scale=full_scale,
                              sample_rate_hz=sample_rate_hz,
                              capacitor_mismatch_std=capacitor_mismatch_std,
                              comparator_noise_std=comparator_noise_std,
                              rng=rng)
        return cls(i_adc=make(), q_adc=make())

    @property
    def bits(self) -> int:
        """Resolution of the pair."""
        return self.i_adc.bits

    @property
    def sample_rate_hz(self) -> float:
        """Per-path sampling rate."""
        return self.i_adc.sample_rate_hz

    def convert(self, baseband, rng: np.random.Generator | None = None,
                noise_i: np.ndarray | None = None,
                noise_q: np.ndarray | None = None) -> np.ndarray:
        """Digitize a complex baseband signal (I and Q independently).

        ``noise_i``/``noise_q`` inject pre-drawn comparator noise for the
        two paths (see :meth:`SARADC.draw_comparator_noise`); a shared
        ``rng`` draws I first then Q, matching the injection order.
        """
        baseband = np.asarray(baseband, dtype=complex)
        i_out = self.i_adc.convert(baseband.real, rng=rng, noise=noise_i)
        q_out = self.q_adc.convert(baseband.imag, rng=rng, noise=noise_q)
        return i_out + 1j * q_out
