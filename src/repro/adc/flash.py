"""Flash ADC model (the gen-1 converter slice).

A flash converter compares the input against ``2^bits - 1`` reference levels
simultaneously.  Its dominant error source is comparator offset: each
threshold is displaced by a random offset, which produces DNL/INL and, if
severe, missing codes.  The gen-1 chip uses four of these slices in a
time-interleaved arrangement to reach 2 GSPS (see ``interleaved.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require_int, require_non_negative, require_positive

__all__ = ["FlashADC"]


@dataclass
class FlashADC:
    """Flash quantizer with per-comparator threshold offsets.

    Attributes
    ----------
    bits:
        Resolution; the converter uses ``2^bits - 1`` comparators.
    full_scale:
        Input range ``[-full_scale, +full_scale]``.
    comparator_offset_std:
        Standard deviation of each comparator's threshold offset, in volts.
    gain_error, offset_error:
        Static gain and offset errors of the whole slice (relevant for
        interleaving mismatch).
    rng:
        Generator used to draw the comparator offsets at construction.
    """

    bits: int = 4
    full_scale: float = 1.0
    comparator_offset_std: float = 0.0
    gain_error: float = 0.0
    offset_error: float = 0.0
    rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require_int(self.bits, "bits", minimum=1)
        require_positive(self.full_scale, "full_scale")
        require_non_negative(self.comparator_offset_std, "comparator_offset_std")
        rng = self.rng if self.rng is not None else np.random.default_rng()
        num_thresholds = (1 << self.bits) - 1
        step = 2.0 * self.full_scale / (1 << self.bits)
        ideal = -self.full_scale + step * (np.arange(num_thresholds) + 1.0)
        offsets = (rng.normal(0.0, self.comparator_offset_std, size=num_thresholds)
                   if self.comparator_offset_std > 0 else np.zeros(num_thresholds))
        # A real flash ADC's thermometer-to-binary encoder counts how many
        # comparators fired, so the effective thresholds act in sorted order.
        self._thresholds = np.sort(ideal + offsets)
        self._step = step

    @property
    def num_levels(self) -> int:
        """Number of output codes."""
        return 1 << self.bits

    @property
    def thresholds(self) -> np.ndarray:
        """The (sorted) comparator thresholds actually in effect."""
        return self._thresholds.copy()

    def convert_codes(self, x, backend=None) -> np.ndarray:
        """Convert input voltages to output codes in ``[0, 2^bits - 1]``.

        ``x`` may carry any leading batch axes — the thresholds broadcast
        against ``(packets, samples)`` input, which is how the batched
        time-interleaved front end converts a whole Monte-Carlo batch in
        one call.  ``backend`` selects an optional
        :class:`~repro.sim.backends.ArrayBackend` to run the search on
        (``None`` keeps the bit-reproducible NumPy reference path).
        """
        if backend is None:
            x = np.asarray(x, dtype=float)
            x = (1.0 + self.gain_error) * x + self.offset_error
            # Each sample's code is the number of thresholds below it.
            return np.searchsorted(self._thresholds, x,
                                   side="right").astype(np.int64)
        xp = backend.xp
        x = backend.asarray(x, dtype=float)
        x = (1.0 + self.gain_error) * x + self.offset_error
        thresholds = backend.asarray(self._thresholds)
        return xp.searchsorted(thresholds, x, side="right").astype(xp.int64)

    def codes_to_values(self, codes, backend=None) -> np.ndarray:
        """Nominal reconstruction values (ideal bin centres) for codes."""
        if backend is None:
            codes = np.asarray(codes, dtype=np.int64)
            return (codes.astype(float) + 0.5) * self._step - self.full_scale
        codes = backend.asarray(codes)
        return (codes.astype(float) + 0.5) * self._step - self.full_scale

    def convert(self, x, backend=None) -> np.ndarray:
        """Convert and reconstruct (the value the digital back end works with).

        Broadcasts like :meth:`convert_codes`, so a ``(packets, samples)``
        batch converts in one call; ``backend`` routes the array work
        through an :class:`~repro.sim.backends.ArrayBackend` (``None`` =
        the NumPy reference path, bit-identical to the historical
        implementation).
        """
        x = np.asarray(x) if backend is None else backend.asarray(x)
        iscomplex = (np.iscomplexobj(x) if backend is None
                     else backend.xp.iscomplexobj(x))
        if iscomplex:
            return (self.codes_to_values(self.convert_codes(x.real, backend),
                                         backend)
                    + 1j * self.codes_to_values(
                        self.convert_codes(x.imag, backend), backend))
        return self.codes_to_values(self.convert_codes(x, backend), backend)

    def differential_nonlinearity_lsb(self) -> np.ndarray:
        """DNL of each code bin in LSB (ideal = 0)."""
        widths = np.diff(np.concatenate(([-self.full_scale], self._thresholds,
                                         [self.full_scale])))
        return widths / self._step - 1.0

    def integral_nonlinearity_lsb(self) -> np.ndarray:
        """INL of each threshold in LSB (cumulative DNL)."""
        step = self._step
        ideal = -self.full_scale + step * (np.arange(self._thresholds.size) + 1.0)
        return (self._thresholds - ideal) / step
