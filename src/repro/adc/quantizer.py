"""Ideal uniform quantizer — the reference all ADC models build on.

The resolution question is central to the paper: "A 1-bit analog-to-digital
converter in a noise limited regime, and a 4-bit ADC in a narrowband
interferer regime are sufficient."  Every ADC model in this subpackage
reduces to this uniform quantizer plus architecture-specific impairments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int, require_positive

__all__ = ["UniformQuantizer", "ideal_sndr_db"]


def ideal_sndr_db(bits: int) -> float:
    """Ideal full-scale sine-wave SNDR of a ``bits``-bit quantizer (6.02 N + 1.76)."""
    require_int(bits, "bits", minimum=1)
    return 6.02 * bits + 1.76


@dataclass
class UniformQuantizer:
    """Mid-rise uniform quantizer with saturation.

    Attributes
    ----------
    bits:
        Resolution in bits (1 bit = a comparator / sign detector).
    full_scale:
        Input range is ``[-full_scale, +full_scale]``.
    """

    bits: int
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        require_int(self.bits, "bits", minimum=1)
        require_positive(self.full_scale, "full_scale")

    @property
    def num_levels(self) -> int:
        """Number of output codes."""
        return 1 << self.bits

    @property
    def step(self) -> float:
        """LSB size."""
        return 2.0 * self.full_scale / self.num_levels

    def quantize_codes(self, x) -> np.ndarray:
        """Quantize to integer codes in ``[0, num_levels - 1]`` with saturation."""
        x = np.asarray(x, dtype=float)
        codes = np.floor((x + self.full_scale) / self.step).astype(np.int64)
        return np.clip(codes, 0, self.num_levels - 1)

    def codes_to_values(self, codes) -> np.ndarray:
        """Reconstruction values (bin centres) for integer codes."""
        codes = np.asarray(codes, dtype=np.int64)
        return (codes.astype(float) + 0.5) * self.step - self.full_scale

    def quantize(self, x) -> np.ndarray:
        """Quantize real input (or complex input component-wise)."""
        x = np.asarray(x)
        if np.iscomplexobj(x):
            return (self.codes_to_values(self.quantize_codes(x.real))
                    + 1j * self.codes_to_values(self.quantize_codes(x.imag)))
        return self.codes_to_values(self.quantize_codes(x))

    def quantization_noise_power(self) -> float:
        """Theoretical in-range quantization noise power, step^2 / 12."""
        return self.step ** 2 / 12.0

    def measured_sndr_db(self, amplitude: float | None = None,
                         num_samples: int = 4096,
                         frequency_fraction: float = 0.013) -> float:
        """Measure SNDR with a full-scale (or given-amplitude) sine-wave test.

        A single-tone test at a non-harmonically-related frequency, the way
        an ADC would be characterized on the bench.
        """
        if amplitude is None:
            amplitude = self.full_scale * (1.0 - 1.0 / self.num_levels)
        n = np.arange(num_samples)
        tone = amplitude * np.sin(2.0 * np.pi * frequency_fraction * n)
        quantized = self.quantize(tone)
        error = quantized - tone
        signal_power = np.mean(tone ** 2)
        error_power = np.mean(error ** 2)
        if error_power <= 0:
            return float("inf")
        return float(10.0 * np.log10(signal_power / error_power))
