"""ADC power-dissipation models.

The paper: "The specification of the data converter resolution determines
not only its power dissipation but also that of the digital back end" and
"more than half of the system power [is] dissipated in the digital back end
and the ADC."  These models let the benchmarks reproduce those proportions.

Two estimates are provided:

* a Walden figure-of-merit model, ``P = FOM * 2^ENOB * f_s``, the standard
  survey metric for Nyquist converters of the paper's era, and
* an architecture-aware model that scales flash power with the comparator
  count (2^bits - 1) and SAR power with the bit-cycle count (bits), which is
  why a 5-bit SAR at 500 MSps burns far less than a 4-bit flash at 2 GSPS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int, require_positive

__all__ = [
    "walden_power_w",
    "walden_fom_j_per_step",
    "ADCPowerModel",
]

#: Representative Walden FOM (J per conversion-step) for 0.18 um CMOS
#: converters of the early-2000s: ~1-4 pJ/step.
DEFAULT_FOM_J_PER_STEP = 2.0e-12


def walden_power_w(bits: float, sample_rate_hz: float,
                   fom_j_per_step: float = DEFAULT_FOM_J_PER_STEP) -> float:
    """Power predicted by the Walden FOM: ``P = FOM * 2^ENOB * fs``."""
    require_positive(sample_rate_hz, "sample_rate_hz")
    require_positive(fom_j_per_step, "fom_j_per_step")
    if bits <= 0:
        raise ValueError("bits must be positive")
    return float(fom_j_per_step * (2.0 ** bits) * sample_rate_hz)


def walden_fom_j_per_step(power_w: float, bits: float,
                          sample_rate_hz: float) -> float:
    """Back out the Walden FOM from a measured power."""
    require_positive(power_w, "power_w")
    require_positive(sample_rate_hz, "sample_rate_hz")
    if bits <= 0:
        raise ValueError("bits must be positive")
    return float(power_w / ((2.0 ** bits) * sample_rate_hz))


@dataclass(frozen=True)
class ADCPowerModel:
    """Architecture-aware ADC power estimate.

    ``comparator_energy_j`` is the energy of one comparator decision
    (including its share of reference/ladder power); ``overhead_w`` covers
    clocking and reference buffers.
    """

    comparator_energy_j: float = 0.4e-12
    overhead_w: float = 1e-3

    def flash_power_w(self, bits: int, sample_rate_hz: float,
                      num_interleaved: int = 1) -> float:
        """Flash converter: ``2^bits - 1`` comparators fire every sample.

        Interleaving splits the sample rate across slices but multiplies the
        comparator count, so to first order the dynamic power is unchanged;
        each slice adds its own overhead.
        """
        require_int(bits, "bits", minimum=1)
        require_positive(sample_rate_hz, "sample_rate_hz")
        require_int(num_interleaved, "num_interleaved", minimum=1)
        comparators = (1 << bits) - 1
        dynamic = comparators * self.comparator_energy_j * sample_rate_hz
        return float(dynamic + num_interleaved * self.overhead_w)

    def sar_power_w(self, bits: int, sample_rate_hz: float) -> float:
        """SAR converter: one comparator, ``bits`` decisions per sample."""
        require_int(bits, "bits", minimum=1)
        require_positive(sample_rate_hz, "sample_rate_hz")
        dynamic = bits * self.comparator_energy_j * sample_rate_hz
        # CDAC switching energy grows with 2^bits but from a small base.
        cdac = 0.05 * self.comparator_energy_j * (1 << bits) * sample_rate_hz
        return float(dynamic + cdac + self.overhead_w)

    def power_vs_resolution(self, architecture: str, sample_rate_hz: float,
                            bit_range=range(1, 9)) -> dict[int, float]:
        """Sweep power versus resolution for one architecture."""
        architecture = architecture.lower()
        result: dict[int, float] = {}
        for bits in bit_range:
            if architecture == "flash":
                result[bits] = self.flash_power_w(bits, sample_rate_hz)
            elif architecture == "sar":
                result[bits] = self.sar_power_w(bits, sample_rate_hz)
            elif architecture == "walden":
                result[bits] = walden_power_w(bits, sample_rate_hz)
            else:
                raise ValueError(f"unknown architecture {architecture!r}")
        return result
