"""Time-interleaved ADC — the gen-1 "2 GSPS 4-way time-interleaved flash ADC".

Interleaving N slices multiplies the aggregate sampling rate by N and, as the
paper notes, "performs an initial 4-way parallelization of the signal" that
the digital back end exploits.  Its costs are the inter-slice gain, offset,
and timing mismatches, all of which the model includes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adc.flash import FlashADC
from repro.adc.jitter import SamplingClock
from repro.utils.validation import require_int, require_positive

__all__ = ["TimeInterleavedADC"]


@dataclass
class TimeInterleavedADC:
    """N-way time-interleaved converter built from :class:`FlashADC` slices.

    Attributes
    ----------
    slices:
        The per-phase converters.  Mismatch between them (different gain or
        offset errors, different comparator offsets) is what produces the
        classic interleaving spurs.
    aggregate_rate_hz:
        Combined sampling rate; each slice runs at ``aggregate_rate_hz / N``.
    timing_skew_s:
        Optional per-slice deterministic timing skew.
    rms_jitter_s:
        Common aperture jitter of all slices.
    """

    slices: tuple[FlashADC, ...]
    aggregate_rate_hz: float = 2e9
    timing_skew_s: tuple[float, ...] | None = None
    rms_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if len(self.slices) < 1:
            raise ValueError("need at least one ADC slice")
        require_positive(self.aggregate_rate_hz, "aggregate_rate_hz")
        if self.timing_skew_s is not None \
                and len(self.timing_skew_s) != len(self.slices):
            raise ValueError("timing_skew_s must have one entry per slice")

    @classmethod
    def uniform(cls, num_slices: int = 4, bits: int = 4,
                aggregate_rate_hz: float = 2e9, full_scale: float = 1.0,
                comparator_offset_std: float = 0.0,
                gain_mismatch_std: float = 0.0,
                offset_mismatch_std: float = 0.0,
                timing_skew_std_s: float = 0.0,
                rms_jitter_s: float = 0.0,
                rng: np.random.Generator | None = None) -> "TimeInterleavedADC":
        """Build an interleaved ADC with randomly drawn slice mismatches."""
        require_int(num_slices, "num_slices", minimum=1)
        if rng is None:
            rng = np.random.default_rng()
        slices = []
        for _ in range(num_slices):
            gain_error = (rng.normal(0.0, gain_mismatch_std)
                          if gain_mismatch_std > 0 else 0.0)
            offset_error = (rng.normal(0.0, offset_mismatch_std)
                            if offset_mismatch_std > 0 else 0.0)
            slices.append(FlashADC(bits=bits, full_scale=full_scale,
                                   comparator_offset_std=comparator_offset_std,
                                   gain_error=gain_error,
                                   offset_error=offset_error, rng=rng))
        skew = None
        if timing_skew_std_s > 0:
            skew = tuple(float(s) for s in
                         rng.normal(0.0, timing_skew_std_s, size=num_slices))
        return cls(slices=tuple(slices), aggregate_rate_hz=aggregate_rate_hz,
                   timing_skew_s=skew, rms_jitter_s=rms_jitter_s)

    @property
    def num_slices(self) -> int:
        """Interleaving factor."""
        return len(self.slices)

    @property
    def per_slice_rate_hz(self) -> float:
        """Sampling rate of each individual slice."""
        return self.aggregate_rate_hz / self.num_slices

    @property
    def bits(self) -> int:
        """Resolution of the converter (all slices share it)."""
        return self.slices[0].bits

    def sample_and_convert(self, waveform, waveform_rate_hz: float,
                           rng: np.random.Generator | None = None
                           ) -> np.ndarray:
        """Sample a densely sampled analog waveform and convert it.

        The waveform (sampled at ``waveform_rate_hz``, which should be well
        above the aggregate rate) is sampled at the interleaved instants —
        slice *k* takes samples ``k, k+N, k+2N, ...`` with its own skew —
        and each slice converts its own stream.  The returned array is the
        re-interleaved aggregate-rate sample stream.
        """
        require_positive(waveform_rate_hz, "waveform_rate_hz")
        waveform = np.asarray(waveform, dtype=float)
        if rng is None:
            rng = np.random.default_rng()
        duration = waveform.size / waveform_rate_hz
        total_samples = int(np.floor(duration * self.aggregate_rate_hz))
        output = np.zeros(total_samples)
        aggregate_period = 1.0 / self.aggregate_rate_hz
        for slice_index, adc in enumerate(self.slices):
            skew = (self.timing_skew_s[slice_index]
                    if self.timing_skew_s is not None else 0.0)
            clock = SamplingClock(sample_rate_hz=self.per_slice_rate_hz,
                                  rms_jitter_s=self.rms_jitter_s,
                                  skew_s=skew)
            num_slice_samples = len(range(slice_index, total_samples,
                                          self.num_slices))
            analog = clock.sample_waveform(
                waveform, waveform_rate_hz,
                num_samples=num_slice_samples, rng=rng,
                start_time_s=slice_index * aggregate_period)
            output[slice_index::self.num_slices] = adc.convert(analog)
        return output

    def convert_presampled(self, samples) -> np.ndarray:
        """Convert an already-sampled stream (one sample per aggregate period).

        Used when the simulation already produced samples on the ADC grid;
        only the quantization and slice gain/offset mismatches apply.
        """
        samples = np.asarray(samples, dtype=float)
        output = np.zeros_like(samples)
        for slice_index, adc in enumerate(self.slices):
            output[slice_index::self.num_slices] = \
                adc.convert(samples[slice_index::self.num_slices])
        return output

    def convert_presampled_batch(self, samples, backend=None) -> np.ndarray:
        """Convert a batch of already-sampled streams in one pass per slice.

        The batched form of :meth:`convert_presampled`: ``samples`` is
        ``(..., num_samples)`` (typically ``(packets, samples)``) and the
        slice round-robin is preserved exactly — position ``i`` of every
        row is converted by slice ``i % num_slices``, so each row's codes
        are bitwise what :meth:`convert_presampled` would have produced
        for it.  ``backend`` routes the conversion and the re-interleave
        through an :class:`~repro.sim.backends.ArrayBackend` (``None`` =
        the NumPy reference, used by the per-packet oracle).
        """
        if backend is None:
            from repro.sim.backends import reference_backend
            backend = reference_backend()
        samples = backend.asarray(samples, dtype=float)
        parts = [adc.convert(samples[..., index::self.num_slices],
                             backend=backend)
                 for index, adc in enumerate(self.slices)]
        return backend.interleave_streams(parts, int(samples.shape[-1]))

    def sample_and_convert_batch(self, waveforms, waveform_rate_hz: float,
                                 rng: np.random.Generator | None = None,
                                 backend=None) -> np.ndarray:
        """Sample and convert a batch of equal-length analog waveforms.

        Equivalent to stacking ``[self.sample_and_convert(w, rate, rng=rng)
        for w in waveforms]`` — the jittered sampling instants consume
        ``rng`` in exactly that per-waveform, per-slice order, so a seeded
        batch is bitwise identical to the loop — but every slice's flash
        conversion runs once over the whole ``(packets, slice_samples)``
        matrix instead of once per packet.  ``waveforms`` must be a 2-D
        ``(packets, num_samples)`` array (equal lengths; pad upstream if
        needed).
        """
        require_positive(waveform_rate_hz, "waveform_rate_hz")
        waveforms = np.asarray(waveforms, dtype=float)
        if waveforms.ndim != 2:
            raise ValueError("sample_and_convert_batch expects a 2-D "
                             "(packets, num_samples) batch; use "
                             "sample_and_convert() for a single waveform")
        if rng is None:
            rng = np.random.default_rng()
        if backend is None:
            from repro.sim.backends import reference_backend
            backend = reference_backend()
        num_packets = waveforms.shape[0]
        duration = waveforms.shape[1] / waveform_rate_hz
        total_samples = int(np.floor(duration * self.aggregate_rate_hz))
        aggregate_period = 1.0 / self.aggregate_rate_hz
        clocks = []
        slice_counts = []
        for slice_index in range(self.num_slices):
            skew = (self.timing_skew_s[slice_index]
                    if self.timing_skew_s is not None else 0.0)
            clocks.append(SamplingClock(sample_rate_hz=self.per_slice_rate_hz,
                                        rms_jitter_s=self.rms_jitter_s,
                                        skew_s=skew))
            slice_counts.append(len(range(slice_index, total_samples,
                                          self.num_slices)))
        analog = [np.empty((num_packets, count)) for count in slice_counts]
        # The sampling (jitter draws + interpolation) loops per packet to
        # keep the rng stream order of the per-packet method; only the
        # flash conversion below is batched — it dominates the cost.
        for packet in range(num_packets):
            for slice_index, clock in enumerate(clocks):
                analog[slice_index][packet] = clock.sample_waveform(
                    waveforms[packet], waveform_rate_hz,
                    num_samples=slice_counts[slice_index], rng=rng,
                    start_time_s=slice_index * aggregate_period)
        parts = [adc.convert(backend.asarray(analog[index]), backend=backend)
                 for index, adc in enumerate(self.slices)]
        return backend.interleave_streams(parts, total_samples)

    def parallel_streams(self, samples) -> list[np.ndarray]:
        """Return the per-slice (already parallelized) converted streams.

        This is the "initial 4-way parallelization" handed to the gen-1
        digital back end.
        """
        samples = np.asarray(samples, dtype=float)
        return [adc.convert(samples[idx::self.num_slices])
                for idx, adc in enumerate(self.slices)]
