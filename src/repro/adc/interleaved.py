"""Time-interleaved ADC — the gen-1 "2 GSPS 4-way time-interleaved flash ADC".

Interleaving N slices multiplies the aggregate sampling rate by N and, as the
paper notes, "performs an initial 4-way parallelization of the signal" that
the digital back end exploits.  Its costs are the inter-slice gain, offset,
and timing mismatches, all of which the model includes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adc.flash import FlashADC
from repro.adc.jitter import SamplingClock
from repro.utils.validation import require_int, require_positive

__all__ = ["TimeInterleavedADC"]


@dataclass
class TimeInterleavedADC:
    """N-way time-interleaved converter built from :class:`FlashADC` slices.

    Attributes
    ----------
    slices:
        The per-phase converters.  Mismatch between them (different gain or
        offset errors, different comparator offsets) is what produces the
        classic interleaving spurs.
    aggregate_rate_hz:
        Combined sampling rate; each slice runs at ``aggregate_rate_hz / N``.
    timing_skew_s:
        Optional per-slice deterministic timing skew.
    rms_jitter_s:
        Common aperture jitter of all slices.
    """

    slices: tuple[FlashADC, ...]
    aggregate_rate_hz: float = 2e9
    timing_skew_s: tuple[float, ...] | None = None
    rms_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if len(self.slices) < 1:
            raise ValueError("need at least one ADC slice")
        require_positive(self.aggregate_rate_hz, "aggregate_rate_hz")
        if self.timing_skew_s is not None \
                and len(self.timing_skew_s) != len(self.slices):
            raise ValueError("timing_skew_s must have one entry per slice")

    @classmethod
    def uniform(cls, num_slices: int = 4, bits: int = 4,
                aggregate_rate_hz: float = 2e9, full_scale: float = 1.0,
                comparator_offset_std: float = 0.0,
                gain_mismatch_std: float = 0.0,
                offset_mismatch_std: float = 0.0,
                timing_skew_std_s: float = 0.0,
                rms_jitter_s: float = 0.0,
                rng: np.random.Generator | None = None) -> "TimeInterleavedADC":
        """Build an interleaved ADC with randomly drawn slice mismatches."""
        require_int(num_slices, "num_slices", minimum=1)
        if rng is None:
            rng = np.random.default_rng()
        slices = []
        for _ in range(num_slices):
            gain_error = (rng.normal(0.0, gain_mismatch_std)
                          if gain_mismatch_std > 0 else 0.0)
            offset_error = (rng.normal(0.0, offset_mismatch_std)
                            if offset_mismatch_std > 0 else 0.0)
            slices.append(FlashADC(bits=bits, full_scale=full_scale,
                                   comparator_offset_std=comparator_offset_std,
                                   gain_error=gain_error,
                                   offset_error=offset_error, rng=rng))
        skew = None
        if timing_skew_std_s > 0:
            skew = tuple(float(s) for s in
                         rng.normal(0.0, timing_skew_std_s, size=num_slices))
        return cls(slices=tuple(slices), aggregate_rate_hz=aggregate_rate_hz,
                   timing_skew_s=skew, rms_jitter_s=rms_jitter_s)

    @property
    def num_slices(self) -> int:
        """Interleaving factor."""
        return len(self.slices)

    @property
    def per_slice_rate_hz(self) -> float:
        """Sampling rate of each individual slice."""
        return self.aggregate_rate_hz / self.num_slices

    @property
    def bits(self) -> int:
        """Resolution of the converter (all slices share it)."""
        return self.slices[0].bits

    def sample_and_convert(self, waveform, waveform_rate_hz: float,
                           rng: np.random.Generator | None = None
                           ) -> np.ndarray:
        """Sample a densely sampled analog waveform and convert it.

        The waveform (sampled at ``waveform_rate_hz``, which should be well
        above the aggregate rate) is sampled at the interleaved instants —
        slice *k* takes samples ``k, k+N, k+2N, ...`` with its own skew —
        and each slice converts its own stream.  The returned array is the
        re-interleaved aggregate-rate sample stream.
        """
        require_positive(waveform_rate_hz, "waveform_rate_hz")
        waveform = np.asarray(waveform, dtype=float)
        if rng is None:
            rng = np.random.default_rng()
        duration = waveform.size / waveform_rate_hz
        total_samples = int(np.floor(duration * self.aggregate_rate_hz))
        output = np.zeros(total_samples)
        aggregate_period = 1.0 / self.aggregate_rate_hz
        for slice_index, adc in enumerate(self.slices):
            skew = (self.timing_skew_s[slice_index]
                    if self.timing_skew_s is not None else 0.0)
            clock = SamplingClock(sample_rate_hz=self.per_slice_rate_hz,
                                  rms_jitter_s=self.rms_jitter_s,
                                  skew_s=skew)
            num_slice_samples = len(range(slice_index, total_samples,
                                          self.num_slices))
            analog = clock.sample_waveform(
                waveform, waveform_rate_hz,
                num_samples=num_slice_samples, rng=rng,
                start_time_s=slice_index * aggregate_period)
            output[slice_index::self.num_slices] = adc.convert(analog)
        return output

    def convert_presampled(self, samples) -> np.ndarray:
        """Convert an already-sampled stream (one sample per aggregate period).

        Used when the simulation already produced samples on the ADC grid;
        only the quantization and slice gain/offset mismatches apply.
        """
        samples = np.asarray(samples, dtype=float)
        output = np.zeros_like(samples)
        for slice_index, adc in enumerate(self.slices):
            output[slice_index::self.num_slices] = \
                adc.convert(samples[slice_index::self.num_slices])
        return output

    def parallel_streams(self, samples) -> list[np.ndarray]:
        """Return the per-slice (already parallelized) converted streams.

        This is the "initial 4-way parallelization" handed to the gen-1
        digital back end.
        """
        samples = np.asarray(samples, dtype=float)
        return [adc.convert(samples[idx::self.num_slices])
                for idx, adc in enumerate(self.slices)]
