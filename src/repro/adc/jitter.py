"""Sampling-clock jitter models.

At 2 GSPS (gen 1) and 500+ MSps (gen 2) aperture jitter is a first-order
error source.  The model resamples the input waveform at jittered instants
using local linear interpolation, which captures the jitter-induced error
power ``(2*pi*f_in*sigma_t)^2`` without needing an analytic signal model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["SamplingClock", "jitter_limited_snr_db"]


def jitter_limited_snr_db(input_frequency_hz: float, rms_jitter_s: float) -> float:
    """SNR ceiling imposed by aperture jitter on a sine input.

    ``SNR = -20 log10(2 pi f_in sigma_t)`` — the classic data-converter
    formula.
    """
    require_positive(input_frequency_hz, "input_frequency_hz")
    require_positive(rms_jitter_s, "rms_jitter_s")
    return float(-20.0 * np.log10(2.0 * np.pi * input_frequency_hz * rms_jitter_s))


@dataclass
class SamplingClock:
    """A sampling clock with Gaussian aperture jitter and a static skew.

    ``skew_s`` models the deterministic timing offset of one interleaved
    ADC slice relative to its ideal phase — the dominant spur mechanism in
    time-interleaved converters.
    """

    sample_rate_hz: float
    rms_jitter_s: float = 0.0
    skew_s: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        require_non_negative(self.rms_jitter_s, "rms_jitter_s")

    def sample_times(self, num_samples: int,
                     rng: np.random.Generator | None = None,
                     start_time_s: float = 0.0) -> np.ndarray:
        """Jittered sampling instants."""
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        nominal = start_time_s + np.arange(num_samples) / self.sample_rate_hz
        times = nominal + self.skew_s
        if self.rms_jitter_s > 0:
            if rng is None:
                rng = np.random.default_rng()
            times = times + rng.normal(0.0, self.rms_jitter_s, size=num_samples)
        return times

    def sample_waveform(self, waveform, waveform_rate_hz: float,
                        num_samples: int | None = None,
                        rng: np.random.Generator | None = None,
                        start_time_s: float = 0.0) -> np.ndarray:
        """Sample a densely sampled waveform at this clock's (jittered) instants.

        ``waveform`` is treated as samples of the underlying continuous
        signal at ``waveform_rate_hz``; values between grid points are
        obtained by linear interpolation.
        """
        require_positive(waveform_rate_hz, "waveform_rate_hz")
        waveform = np.asarray(waveform)
        duration = waveform.size / waveform_rate_hz
        if num_samples is None:
            num_samples = int(np.floor((duration - start_time_s)
                                       * self.sample_rate_hz))
            num_samples = max(num_samples, 0)
        times = self.sample_times(num_samples, rng=rng,
                                  start_time_s=start_time_s)
        times = np.clip(times, 0.0, duration - 1.0 / waveform_rate_hz)
        grid = np.arange(waveform.size) / waveform_rate_hz
        if np.iscomplexobj(waveform):
            return (np.interp(times, grid, waveform.real)
                    + 1j * np.interp(times, grid, waveform.imag))
        return np.interp(times, grid, waveform)
