"""ADC models: ideal quantizer, flash, time-interleaved, SAR, jitter, power."""

from repro.adc.flash import FlashADC
from repro.adc.interleaved import TimeInterleavedADC
from repro.adc.jitter import SamplingClock, jitter_limited_snr_db
from repro.adc.power import (
    ADCPowerModel,
    DEFAULT_FOM_J_PER_STEP,
    walden_fom_j_per_step,
    walden_power_w,
)
from repro.adc.quantizer import UniformQuantizer, ideal_sndr_db
from repro.adc.sar import QuadratureSARADC, SARADC

__all__ = [
    "FlashADC",
    "TimeInterleavedADC",
    "SamplingClock",
    "jitter_limited_snr_db",
    "ADCPowerModel",
    "DEFAULT_FOM_J_PER_STEP",
    "walden_fom_j_per_step",
    "walden_power_w",
    "UniformQuantizer",
    "ideal_sndr_db",
    "QuadratureSARADC",
    "SARADC",
]
