"""Per-run telemetry event ledger and aggregated summary.

Every telemetry-enabled :meth:`repro.runs.RunDriver.run_shard` call
flushes its :class:`~repro.obs.recorder.Recorder` into two artifacts in
the run directory, next to ``manifest.json``:

``events.jsonl``
    The append-only raw ledger — one JSON event per line, appended as a
    single ``O_APPEND`` write + fsync per batch (the same discipline as
    the result store), so concurrent shard processes never interleave
    partial lines and a crash loses at most the final batch.  Because
    the driver flushes in a ``finally`` block, a crashed run still
    leaves the events recorded up to the failure on disk — the partial
    ledger is valid and :func:`EventLedger.read` tolerates a truncated
    tail line.

``telemetry.json``
    The aggregated summary (:func:`summarize` of the *whole* ledger,
    re-derived atomically after every append): span statistics, counter
    totals, last/max gauges.  ``repro report`` renders either artifact;
    dashboards can poll this one cheaply.

Events follow schema version 1 (see
:data:`repro.obs.recorder.EVENT_SCHEMA_VERSION`): every event carries
``schema``/``kind``/``name``/``ts``/``pid``/``attrs``, spans add
``duration_s`` and counters/gauges add ``value``.  :func:`validate_event`
is the single source of truth for that shape — CI validates smoke-run
ledgers with it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.recorder import EVENT_SCHEMA_VERSION
from repro.utils.io import atomic_write_text

__all__ = [
    "LEDGER_NAME",
    "SUMMARY_NAME",
    "EventLedger",
    "summarize",
    "validate_event",
    "write_summary",
]

#: File name of the raw event ledger inside a run directory.
LEDGER_NAME = "events.jsonl"

#: File name of the aggregated telemetry summary inside a run directory.
SUMMARY_NAME = "telemetry.json"

_KINDS = ("span", "counter", "gauge")


def validate_event(event) -> None:
    """Raise ``ValueError`` unless ``event`` is a valid schema-1 event.

    Checks the common envelope (``schema`` == 1, known ``kind``,
    non-empty ``name``, numeric ``ts``, integer ``pid``, dict ``attrs``)
    plus the kind-specific payload (``duration_s`` for spans, ``value``
    for counters and gauges), and that the whole event is JSON-safe.
    """
    if not isinstance(event, dict):
        raise ValueError(f"event must be a dict, got {type(event).__name__}")
    if event.get("schema") != EVENT_SCHEMA_VERSION:
        raise ValueError(f"unsupported event schema {event.get('schema')!r} "
                         f"(expected {EVENT_SCHEMA_VERSION})")
    kind = event.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"event name must be a non-empty string, "
                         f"got {name!r}")
    if not isinstance(event.get("ts"), (int, float)):
        raise ValueError(f"event ts must be numeric, got {event.get('ts')!r}")
    if not isinstance(event.get("pid"), int):
        raise ValueError(f"event pid must be an int, got {event.get('pid')!r}")
    if not isinstance(event.get("attrs"), dict):
        raise ValueError(f"event attrs must be a dict, "
                         f"got {event.get('attrs')!r}")
    if kind == "span":
        if not isinstance(event.get("duration_s"), (int, float)):
            raise ValueError(f"span event needs a numeric duration_s, "
                             f"got {event.get('duration_s')!r}")
    elif not isinstance(event.get("value"), (int, float)):
        raise ValueError(f"{kind} event needs a numeric value, "
                         f"got {event.get('value')!r}")
    try:
        json.dumps(event)
    except (TypeError, ValueError) as error:
        raise ValueError(f"event is not JSON-serializable: {error}") from None


class EventLedger:
    """The append-only ``events.jsonl`` file of one run directory."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, events) -> int:
        """Validate and append a batch of events; returns the count.

        The whole batch goes out as one ``os.write`` on an ``O_APPEND``
        descriptor followed by fsync — atomic with respect to concurrent
        shard appenders, durable up to the last completed batch.
        """
        events = list(events)
        if not events:
            return 0
        lines = []
        for event in events:
            validate_event(event)
            lines.append(json.dumps(event, sort_keys=True))
        payload = "\n".join(lines) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(self.path,
                             os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(descriptor, payload.encode("utf-8"))
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
        return len(events)

    def read(self) -> tuple[list[dict], int]:
        """Load the ledger; returns ``(events, corrupt_count)``.

        Corrupt or truncated lines (e.g. the tail of a crashed write)
        are skipped and counted, never fatal — mirroring the result
        store's damaged-cache policy.
        """
        if not self.path.exists():
            return [], 0
        events: list[dict] = []
        corrupt = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    validate_event(event)
                except (json.JSONDecodeError, ValueError):
                    corrupt += 1
                    continue
                events.append(event)
        return events, corrupt


def summarize(events) -> dict:
    """Aggregate a ledger into the ``telemetry.json`` payload.

    Returns ``{"schema", "events", "spans", "counters", "gauges"}``:
    per-span-name count/total/min/max/mean seconds, per-counter-name
    totals, per-gauge-name last and max values.
    """
    spans: dict[str, dict] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, dict] = {}
    count = 0
    for event in events:
        count += 1
        kind = event["kind"]
        name = event["name"]
        if kind == "span":
            entry = spans.setdefault(name, {
                "count": 0, "total_s": 0.0,
                "min_s": float("inf"), "max_s": 0.0})
            duration = float(event["duration_s"])
            entry["count"] += 1
            entry["total_s"] += duration
            entry["min_s"] = min(entry["min_s"], duration)
            entry["max_s"] = max(entry["max_s"], duration)
        elif kind == "counter":
            counters[name] = counters.get(name, 0) + event["value"]
        else:
            value = float(event["value"])
            entry = gauges.setdefault(name, {"last": value, "max": value})
            entry["last"] = value
            entry["max"] = max(entry["max"], value)
    for entry in spans.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return {"schema": EVENT_SCHEMA_VERSION, "events": count,
            "spans": spans, "counters": counters, "gauges": gauges}


def write_summary(path, events) -> dict:
    """Atomically write :func:`summarize` of ``events`` to ``path``.

    Returns the summary payload.  Atomic (temp file + rename) so a
    dashboard polling ``telemetry.json`` never reads a torn file.
    """
    summary = summarize(events)
    atomic_write_text(path, json.dumps(summary, sort_keys=True, indent=2)
                      + "\n")
    return summary
