"""repro.obs: lightweight, dependency-free run telemetry.

Instrumentation for the sweep stack with one hard contract: **off by
default and bitwise invisible**.  Results, ``config_digest``, store
keys, and golden fixtures are identical whether recording is on or off,
and the disabled path is a true no-op (a null recorder, zero clock
reads).

* :mod:`repro.obs.recorder` — :class:`Recorder` (``span()`` context
  managers, counters, gauges, Prometheus text exposition via
  :meth:`Recorder.render_prom`), the no-op :class:`NullRecorder`, and
  the :func:`active`/:func:`activate` pattern that lets leaf code (the
  batched receiver stages, the shared-memory blocks, the result store)
  record against whatever recorder the orchestration layer installed.
* :mod:`repro.obs.ledger` — the per-run append-only ``events.jsonl``
  ledger and aggregated ``telemetry.json`` summary written next to
  ``manifest.json``, plus the schema validator CI runs against them.
* :mod:`repro.obs.progress` — the ``--progress`` live single-line CLI
  readout (chunks, points, throughput, cache-hit share).
* :mod:`repro.obs.report` — the ``python -m repro report`` renderer
  (span tables, chunk latency histogram, per-scenario throughput,
  slowest-chunk top-k).

Enable telemetry with ``SweepEngine(recorder=Recorder())`` or the CLI's
``--telemetry`` flag; drive progress with ``--progress``.
"""

from repro.obs.ledger import (
    LEDGER_NAME,
    SUMMARY_NAME,
    EventLedger,
    summarize,
    validate_event,
    write_summary,
)
from repro.obs.progress import ProgressLine
from repro.obs.recorder import (
    EVENT_SCHEMA_VERSION,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    activate,
    active,
)
from repro.obs.report import load_run_events, render_report

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "LEDGER_NAME",
    "NULL_RECORDER",
    "SUMMARY_NAME",
    "EventLedger",
    "NullRecorder",
    "ProgressLine",
    "Recorder",
    "activate",
    "active",
    "load_run_events",
    "render_report",
    "summarize",
    "validate_event",
    "write_summary",
]
