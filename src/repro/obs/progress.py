"""Live single-line CLI progress for chunked sweeps.

:class:`ProgressLine` renders a carriage-return-rewritten status line to
``stderr`` (so it never pollutes piped CLI output) while
``python -m repro sweep --progress`` runs::

    sweep: 7/12 chunks | 3/5 points | 1842 pkt/s | cache 40%

It is driven by the same callbacks the run driver already exposes —
``on_chunk`` fires per completed simulated chunk, ``on_point`` per
finished grid point (cached or simulated) — plus one ``on_plan`` call
after cache resolution that tells it how much work was scheduled vs
served from cache.  Rendering is rate-limited (default 10 Hz) and the
class degrades gracefully on non-TTY streams (it still writes, CI logs
show the final line).  Purely presentational: it never touches the
simulation or its random streams.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressLine"]


class ProgressLine:
    """A ``\\r``-rewritten one-line progress display for a sweep shard.

    Parameters
    ----------
    points_total:
        Number of grid points in the shard (denominator of the point
        readout).
    label:
        Prefix for the line (default ``"sweep"``).
    stream:
        Text stream to write to (default ``sys.stderr``).
    clock:
        Monotonic clock used for throughput and render rate-limiting
        (injectable for tests).
    min_interval_s:
        Minimum seconds between renders; the final :meth:`close` render
        always happens.
    """

    def __init__(self, points_total: int, label: str = "sweep",
                 stream=None, clock=time.monotonic,
                 min_interval_s: float = 0.1) -> None:
        self.points_total = int(points_total)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._min_interval = float(min_interval_s)
        self._start = clock()
        self._last_render = -float("inf")
        self._chunks_total = None
        self._chunks_done = 0
        self._points_done = 0
        self._points_cached = 0
        self._packets_simulated = 0
        self._packets_cached = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Driver callbacks
    # ------------------------------------------------------------------
    def plan(self, num_chunks: int, packets_cached: int = 0) -> None:
        """Record the schedule: chunks to simulate and packets already
        served from cache (called once after cache resolution)."""
        self._chunks_total = int(num_chunks)
        self._packets_cached += int(packets_cached)
        self._render()

    def chunk(self, point, packet_offset: int, measurement) -> None:
        """Record one freshly simulated chunk (an ``on_chunk`` event)."""
        self._chunks_done += 1
        self._packets_simulated += int(measurement.packets_sent)
        self._render()

    def point(self, point, measurement, source: str = "simulated") -> None:
        """Record one finished grid point; ``source`` is ``"cached"``
        when it was served entirely from the store."""
        self._points_done += 1
        if source == "cached":
            self._points_cached += 1
        self._render()

    def close(self) -> None:
        """Force a final render and terminate the line with a newline."""
        if self._closed:
            return
        self._closed = True
        self._render(force=True)
        self.stream.write("\n")
        self.stream.flush()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The current status line (without the leading ``\\r``)."""
        parts = [self.label + ":"]
        if self._chunks_total is not None:
            parts.append(f"{self._chunks_done}/{self._chunks_total} chunks")
        parts.append(f"{self._points_done}/{self.points_total} points")
        elapsed = self._clock() - self._start
        if elapsed > 0 and self._packets_simulated:
            parts.append(f"{self._packets_simulated / elapsed:.0f} pkt/s")
        total_packets = self._packets_simulated + self._packets_cached
        if total_packets:
            share = 100.0 * self._packets_cached / total_packets
            parts.append(f"cache {share:.0f}%")
        return " ".join(parts[:1]) + " " + " | ".join(parts[1:])

    def _render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        self.stream.write("\r\x1b[K" + self.render())
        self.stream.flush()
