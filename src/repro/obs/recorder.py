"""In-process telemetry recorder: spans, counters, gauges.

A :class:`Recorder` accumulates a flat list of *events* — timed spans
(``with recorder.span("chunk.run", ...)``), monotonic counters
(``recorder.counter("store.chunks_added")``) and point-in-time gauges
(``recorder.gauge("shm.task_block_bytes", n)``) — as plain JSON-safe
dictionaries, cheap enough to thread through the hot orchestration paths
of :class:`repro.sim.SweepEngine` and :class:`repro.runs.RunDriver`.

The hard contract of the whole :mod:`repro.obs` layer is that telemetry
is **off by default and bitwise invisible**: recording never touches a
random stream, never reorders work, and the disabled path is a true
no-op.  :data:`NULL_RECORDER` (a :class:`NullRecorder`) implements every
recording method as a constant-time pass that performs **zero clock
reads** — its :meth:`~NullRecorder.span` hands back one shared inert
context manager — so instrumented code needs no ``if enabled`` guards.

Instrumentation deep inside the stack (the batched receiver stages, the
shared-memory blocks, the result store) reaches the current recorder
through the *active-recorder* pattern: orchestration code installs its
recorder with :func:`activate` (a re-entrant context manager) and leaf
code calls :func:`active` to record against it.  The active recorder is
a per-process module global, **not** thread-local: worker *processes*
each activate their own recorder (a fork inherits the parent's — always
replace it, never record into it), while helper threads (e.g. the
channel-FFT pool) must not record.

Durations come from ``time.perf_counter`` and event timestamps from
``time.time``; both are injectable for tests.  Worker processes ship
their drained event batches back to the parent, which merges them with
:meth:`Recorder.absorb`.  :meth:`Recorder.render_prom` exposes the
aggregated state in the Prometheus text exposition format, ready for a
future ``repro.serve`` dashboard to scrape.
"""

from __future__ import annotations

import os
import time

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "activate",
    "active",
]

#: Schema version stamped on every event (see :mod:`repro.obs.ledger`).
EVENT_SCHEMA_VERSION = 1


class _NullSpan:
    """Shared inert context manager returned by :meth:`NullRecorder.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op entry (no clock read)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op exit; never swallows exceptions."""
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed span; records one ``span`` event when it exits."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = None

    def __enter__(self) -> "_Span":
        """Start the clock."""
        self._start = self._recorder._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Record the span (marking it failed when an exception passed
        through); never swallows the exception."""
        duration = self._recorder._clock() - self._start
        attrs = self._attrs
        if exc_type is not None:
            attrs = dict(attrs, failed=True)
        self._recorder._append("span", self._name, attrs,
                               duration_s=float(duration))
        return False


class Recorder:
    """Accumulates telemetry events for one process (or one worker task).

    Parameters
    ----------
    clock:
        Monotonic duration source (default ``time.perf_counter``).
    time_source:
        Wall-clock timestamp source for events (default ``time.time``).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter,
                 time_source=time.time) -> None:
        self._clock = clock
        self._time = time_source
        self._pid = os.getpid()
        self._events: list[dict] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, kind: str, name: str, attrs: dict, **payload) -> None:
        event = {"schema": EVENT_SCHEMA_VERSION, "kind": kind,
                 "name": str(name), "ts": float(self._time()),
                 "pid": self._pid, "attrs": attrs}
        event.update(payload)
        self._events.append(event)

    def span(self, name: str, **attrs) -> _Span:
        """A context manager timing one operation.

        The span event is recorded when the ``with`` block exits, with
        its wall duration in ``duration_s`` and ``attrs`` attached (plus
        ``failed: true`` when the block raised).
        """
        return _Span(self, name, attrs)

    def counter(self, name: str, value: float = 1, **attrs) -> None:
        """Record a monotonic increment (totals are summed per name)."""
        self._append("counter", name, attrs, value=value)

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record a point-in-time measurement (last value wins)."""
        self._append("gauge", name, attrs, value=value)

    # ------------------------------------------------------------------
    # Event access / transport
    # ------------------------------------------------------------------
    def events(self) -> tuple[dict, ...]:
        """Every recorded event, oldest first (a snapshot copy)."""
        return tuple(self._events)

    def drain(self) -> list[dict]:
        """Take (and clear) the recorded events — the worker-to-parent
        shipping primitive: workers drain, the parent absorbs."""
        events, self._events = self._events, []
        return events

    def absorb(self, events) -> None:
        """Merge a batch of serialized events (e.g. shipped back from a
        worker process) into this recorder."""
        if events:
            self._events.extend(events)

    def clear(self) -> None:
        """Discard every recorded event."""
        self._events = []

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def counter_totals(self) -> dict[str, float]:
        """Summed counter values keyed by counter name."""
        totals: dict[str, float] = {}
        for event in self._events:
            if event["kind"] == "counter":
                name = event["name"]
                totals[name] = totals.get(name, 0) + event["value"]
        return totals

    def counter_breakdown(self, attr: str) -> dict[str, dict[str, float]]:
        """Counter totals split by one attribute's value.

        ``counter_breakdown("backend")`` returns, per counter name, the
        summed values keyed by each recorded ``backend`` attribute value
        (events without the attribute land under ``""``) — how the
        per-store-backend cache metrics (``store.lookup_hits`` with
        ``backend="jsonl"`` vs ``"sqlite"``) are separated.  Counters
        never carrying the attribute are omitted.
        """
        counters = [event for event in self._events
                    if event["kind"] == "counter"]
        tracked = {event["name"] for event in counters
                   if attr in (event.get("attrs") or {})}
        breakdown: dict[str, dict[str, float]] = {}
        for event in counters:
            if event["name"] not in tracked:
                continue
            value = str((event.get("attrs") or {}).get(attr, ""))
            per_name = breakdown.setdefault(event["name"], {})
            per_name[value] = per_name.get(value, 0) + event["value"]
        return breakdown

    def gauge_values(self) -> dict[str, float]:
        """Most recent gauge value keyed by gauge name."""
        values: dict[str, float] = {}
        for event in self._events:
            if event["kind"] == "gauge":
                values[event["name"]] = event["value"]
        return values

    def span_stats(self) -> dict[str, dict]:
        """Per-span-name aggregates: count, total/min/max/mean seconds."""
        stats: dict[str, dict] = {}
        for event in self._events:
            if event["kind"] != "span":
                continue
            entry = stats.setdefault(event["name"], {
                "count": 0, "total_s": 0.0,
                "min_s": float("inf"), "max_s": 0.0})
            duration = float(event["duration_s"])
            entry["count"] += 1
            entry["total_s"] += duration
            entry["min_s"] = min(entry["min_s"], duration)
            entry["max_s"] = max(entry["max_s"], duration)
        for entry in stats.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return stats

    def render_prom(self) -> str:
        """The aggregated state in Prometheus text exposition format.

        Counters render as ``repro_<name>_total``, gauges as
        ``repro_<name>``, spans as ``repro_<name>_seconds`` summaries
        (``_count`` + ``_sum``).  Names are sanitized to the Prometheus
        charset (dots and dashes become underscores).  The output ends
        with a newline, ready to serve as ``text/plain; version=0.0.4``
        (what the future ``repro.serve`` dashboard scrapes).
        """
        lines: list[str] = []
        for name, total in sorted(self.counter_totals().items()):
            metric = f"repro_{_prom_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(total)}")
        for name, value in sorted(self.gauge_values().items()):
            metric = f"repro_{_prom_name(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(value)}")
        for name, stats in sorted(self.span_stats().items()):
            metric = f"repro_{_prom_name(name)}_seconds"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {stats['count']}")
            lines.append(f"{metric}_sum {_prom_value(stats['total_s'])}")
        return "\n".join(lines) + "\n" if lines else ""


class NullRecorder:
    """The disabled recorder: every method is a constant-time no-op.

    This is what makes telemetry *bitwise invisible* when off: no clock
    is ever read (``span`` returns a shared inert context manager), no
    allocation grows, and instrumented code needs no conditionals.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """The shared inert context manager (no clock reads)."""
        return _NULL_SPAN

    def counter(self, name: str, value: float = 1, **attrs) -> None:
        """No-op."""

    def gauge(self, name: str, value: float, **attrs) -> None:
        """No-op."""

    def events(self) -> tuple:
        """Always empty."""
        return ()

    def drain(self) -> list:
        """Always empty."""
        return []

    def absorb(self, events) -> None:
        """Discards the batch."""

    def clear(self) -> None:
        """No-op."""

    def counter_totals(self) -> dict:
        """Always empty."""
        return {}

    def counter_breakdown(self, attr: str) -> dict:
        """Always empty."""
        return {}

    def gauge_values(self) -> dict:
        """Always empty."""
        return {}

    def span_stats(self) -> dict:
        """Always empty."""
        return {}

    def render_prom(self) -> str:
        """Always empty."""
        return ""


#: The process-wide disabled recorder (safe to share: it holds no state).
NULL_RECORDER = NullRecorder()

_active: Recorder | NullRecorder = NULL_RECORDER


def active() -> Recorder | NullRecorder:
    """The recorder leaf code should record against right now.

    Defaults to :data:`NULL_RECORDER`; orchestration code swaps it in
    with :func:`activate`.  Per process, not per thread — helper threads
    must not record.
    """
    return _active


class activate:
    """Install ``recorder`` as the active recorder for a ``with`` block.

    Re-entrant (the previous active recorder is restored on exit) and
    ``None``-tolerant (``None`` activates :data:`NULL_RECORDER`), so
    call sites can pass an optional recorder straight through.
    """

    __slots__ = ("_recorder", "_previous")

    def __init__(self, recorder: Recorder | NullRecorder | None) -> None:
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        self._previous = None

    def __enter__(self) -> Recorder | NullRecorder:
        """Swap the recorder in; returns it for convenience."""
        global _active
        self._previous = _active
        _active = self._recorder
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Restore the previously active recorder."""
        global _active
        _active = self._previous
        return False


def _prom_name(name: str) -> str:
    """Sanitize an event name to the Prometheus metric charset."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _prom_value(value: float) -> str:
    """Render a metric value (integers without a trailing ``.0``)."""
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)
