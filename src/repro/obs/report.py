"""Render a run's telemetry ledger as a human-readable report.

Backs ``python -m repro report <run_dir>``: loads ``events.jsonl`` from
the run directory (tolerating a truncated tail, see
:class:`repro.obs.ledger.EventLedger`) and renders

* a per-span timing table (count, total, mean, min, max),
* an ASCII latency histogram over ``chunk.run`` spans,
* a per-scenario throughput table (packets simulated / chunk seconds),
* the top-k slowest chunks with their identity (point digest, Eb/N0,
  packet offset) — the first place to look when one scenario drags a
  whole sweep, and
* counter totals and gauge last/max values.

Everything is derived from the ledger alone, so the report works on
live, finished, and crashed runs alike.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.ledger import LEDGER_NAME, EventLedger, summarize

__all__ = ["load_run_events", "render_report"]

_CHUNK_SPAN = "chunk.run"
_HISTOGRAM_BUCKETS = 8
_HISTOGRAM_WIDTH = 30


def load_run_events(run_dir) -> tuple[list[dict], int]:
    """Load the event ledger of a run directory.

    Returns ``(events, corrupt_count)``.  Raises ``FileNotFoundError``
    when the run has no ``events.jsonl`` (telemetry was off).
    """
    path = Path(run_dir) / LEDGER_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"no {LEDGER_NAME} in {run_dir} — run the sweep with "
            f"--telemetry to record one")
    return EventLedger(path).read()


def render_report(events, top_k: int = 5) -> str:
    """The full text report for a ledger's events."""
    summary = summarize(events)
    chunk_spans = [event for event in events
                   if event["kind"] == "span" and event["name"] == _CHUNK_SPAN]
    sections = [
        _render_span_table(summary["spans"]),
        _render_histogram(chunk_spans),
        _render_throughput(chunk_spans),
        _render_slowest(chunk_spans, top_k),
        _render_counters(summary["counters"]),
        _render_gauges(summary["gauges"]),
    ]
    body = "\n\n".join(section for section in sections if section)
    if not body:
        return f"no events ({summary['events']} recorded)\n"
    return body + "\n"


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _render_span_table(spans: dict) -> str:
    if not spans:
        return ""
    rows = [(name, str(stats["count"]), _seconds(stats["total_s"]),
             _seconds(stats["mean_s"]), _seconds(stats["min_s"]),
             _seconds(stats["max_s"]))
            for name, stats in sorted(spans.items())]
    return _table("spans",
                  ("name", "count", "total", "mean", "min", "max"), rows)

def _render_histogram(chunk_spans: list) -> str:
    if not chunk_spans:
        return ""
    durations = [float(event["duration_s"]) for event in chunk_spans]
    low, high = min(durations), max(durations)
    span = high - low
    if span <= 0:
        # Degenerate: every chunk took the same time -> one full bucket.
        edges = [(low, high)]
        counts = [len(durations)]
    else:
        width = span / _HISTOGRAM_BUCKETS
        edges = [(low + i * width, low + (i + 1) * width)
                 for i in range(_HISTOGRAM_BUCKETS)]
        counts = [0] * _HISTOGRAM_BUCKETS
        for duration in durations:
            index = min(int((duration - low) / width), _HISTOGRAM_BUCKETS - 1)
            counts[index] += 1
    peak = max(counts)
    lines = [f"chunk latency ({len(durations)} chunk(s))"]
    for (start, stop), count in zip(edges, counts):
        bar = "#" * round(_HISTOGRAM_WIDTH * count / peak) if count else ""
        lines.append(f"  {_seconds(start):>9} - {_seconds(stop):>9} "
                     f"|{bar:<{_HISTOGRAM_WIDTH}}| {count}")
    return "\n".join(lines)

def _render_throughput(chunk_spans: list) -> str:
    if not chunk_spans:
        return ""
    by_scenario: dict[str, dict] = {}
    for event in chunk_spans:
        attrs = event["attrs"]
        scenario = str(attrs.get("scenario", "?"))
        entry = by_scenario.setdefault(
            scenario, {"chunks": 0, "packets": 0, "seconds": 0.0})
        entry["chunks"] += 1
        entry["packets"] += int(attrs.get("packets", 0))
        entry["seconds"] += float(event["duration_s"])
    rows = []
    for scenario, entry in sorted(by_scenario.items()):
        rate = (entry["packets"] / entry["seconds"]
                if entry["seconds"] > 0 else 0.0)
        rows.append((scenario, str(entry["chunks"]), str(entry["packets"]),
                     _seconds(entry["seconds"]), f"{rate:.0f}"))
    return _table("throughput by scenario",
                  ("scenario", "chunks", "packets", "time", "pkt/s"), rows)

def _render_slowest(chunk_spans: list, top_k: int) -> str:
    if not chunk_spans or top_k <= 0:
        return ""
    slowest = sorted(chunk_spans, key=lambda e: float(e["duration_s"]),
                     reverse=True)[:top_k]
    rows = []
    for event in slowest:
        attrs = event["attrs"]
        rows.append((_seconds(float(event["duration_s"])),
                     str(attrs.get("point", "?")),
                     str(attrs.get("scenario", "?")),
                     str(attrs.get("ebn0_db", "?")),
                     str(attrs.get("packet_offset", "?")),
                     str(attrs.get("packets", "?"))))
    return _table(f"slowest {len(rows)} chunk(s)",
                  ("time", "point", "scenario", "ebn0", "offset", "packets"),
                  rows)

def _render_counters(counters: dict) -> str:
    if not counters:
        return ""
    rows = [(name, _number(value)) for name, value in sorted(counters.items())]
    return _table("counters", ("name", "total"), rows)

def _render_gauges(gauges: dict) -> str:
    if not gauges:
        return ""
    rows = [(name, _number(entry["last"]), _number(entry["max"]))
            for name, entry in sorted(gauges.items())]
    return _table("gauges", ("name", "last", "max"), rows)


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _table(title: str, header: tuple, rows: list) -> str:
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  " + "  ".join(cell.ljust(width)
                                  for cell, width in zip(header, widths)))
    lines.append("  " + "  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  " + "  ".join(cell.ljust(width)
                                      for cell, width in zip(row, widths)))
    return "\n".join(lines)

def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"

def _number(value: float) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return f"{number:.3g}"
