"""Pulse modulation schemes: how bits map onto pulses.

The paper's discrete prototype exists specifically to compare modulation
schemes within a 500 MHz bandwidth.  We implement the standard pulsed-UWB
alphabet:

* **BPSK** (antipodal pulse-amplitude): bit flips the pulse polarity.
* **OOK** (on-off keying): bit gates the pulse on or off.
* **PPM** (binary pulse-position): bit selects one of two pulse positions.
* **PAM** (M-ary pulse-amplitude): groups of bits select an amplitude level.

Each scheme is a ``Modulator`` with ``modulate(bits)`` returning per-pulse
symbols and ``demodulate(statistics)`` mapping correlator outputs back to
bits, so schemes are interchangeable throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bits import pack_bits, unpack_bits

__all__ = [
    "Modulator",
    "BPSKModulator",
    "OOKModulator",
    "BinaryPPMModulator",
    "PAMModulator",
    "make_modulator",
    "MODULATION_SCHEMES",
]


class Modulator:
    """Base class for pulse modulators.

    A modulator converts bits to per-pulse *symbols* and back.  Symbols are
    abstract numbers the pulse-train generator interprets:

    * amplitude schemes (BPSK/OOK/PAM) return real amplitudes;
    * position schemes (PPM) return integer position indices via
      ``position_offsets``.
    """

    name: str = "base"
    bits_per_symbol: int = 1
    #: Per-symbol time offsets (s) for position modulation; ``None`` for
    #: amplitude-only schemes.
    position_offsets: tuple[float, ...] | None = None

    def modulate(self, bits) -> np.ndarray:
        """Map bits to symbols."""
        raise NotImplementedError

    def demodulate(self, statistics) -> np.ndarray:
        """Map per-symbol decision statistics back to bits."""
        raise NotImplementedError

    def symbols_to_amplitudes(self, symbols) -> np.ndarray:
        """Return the pulse amplitude for each symbol (default: identity)."""
        return np.asarray(symbols, dtype=float)

    def num_symbols(self, num_bits: int) -> int:
        """Number of symbols produced by ``num_bits`` bits."""
        if num_bits % self.bits_per_symbol != 0:
            raise ValueError(
                f"{self.name}: bit count {num_bits} is not a multiple of "
                f"bits_per_symbol={self.bits_per_symbol}"
            )
        return num_bits // self.bits_per_symbol

    def average_symbol_energy(self) -> float:
        """Average pulse-energy scaling of the constellation (unit pulse)."""
        raise NotImplementedError


def _check_bits(bits) -> np.ndarray:
    bits = np.asarray(bits, dtype=np.int64).ravel()
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must contain only 0 and 1")
    return bits


@dataclass
class BPSKModulator(Modulator):
    """Antipodal modulation: bit 0 -> -1, bit 1 -> +1."""

    name: str = "bpsk"
    bits_per_symbol: int = 1

    def modulate(self, bits) -> np.ndarray:
        bits = _check_bits(bits)
        return 2.0 * bits - 1.0

    def demodulate(self, statistics) -> np.ndarray:
        statistics = np.asarray(statistics, dtype=float)
        return (statistics > 0).astype(np.int64)

    def average_symbol_energy(self) -> float:
        return 1.0


@dataclass
class OOKModulator(Modulator):
    """On-off keying: bit 0 -> no pulse, bit 1 -> pulse.

    The demodulation threshold is half the expected "on" amplitude; callers
    that know the received amplitude should pass normalized statistics.
    """

    name: str = "ook"
    bits_per_symbol: int = 1
    threshold: float = 0.5

    def modulate(self, bits) -> np.ndarray:
        bits = _check_bits(bits)
        return bits.astype(float)

    def demodulate(self, statistics) -> np.ndarray:
        statistics = np.asarray(statistics, dtype=float)
        return (statistics > self.threshold).astype(np.int64)

    def average_symbol_energy(self) -> float:
        return 0.5


@dataclass
class BinaryPPMModulator(Modulator):
    """Binary pulse-position modulation.

    Bit 0 transmits the pulse at the nominal position, bit 1 delays it by
    ``delta_s`` seconds.  ``demodulate`` expects the *difference* between the
    late-position and early-position correlator outputs.
    """

    delta_s: float = 2e-9
    name: str = "ppm"
    bits_per_symbol: int = 1

    def __post_init__(self) -> None:
        if self.delta_s <= 0:
            raise ValueError("delta_s must be positive")
        self.position_offsets = (0.0, float(self.delta_s))

    def modulate(self, bits) -> np.ndarray:
        bits = _check_bits(bits)
        return bits.astype(np.int64)

    def symbols_to_amplitudes(self, symbols) -> np.ndarray:
        return np.ones(np.asarray(symbols).size, dtype=float)

    def demodulate(self, statistics) -> np.ndarray:
        statistics = np.asarray(statistics, dtype=float)
        return (statistics > 0).astype(np.int64)

    def average_symbol_energy(self) -> float:
        return 1.0


@dataclass
class PAMModulator(Modulator):
    """M-ary pulse-amplitude modulation with a Gray-mapped symmetric alphabet.

    Levels are ``{±1, ±3, ...} / sqrt(E_avg)`` so the average symbol energy
    is one, making Eb/N0 comparisons across orders fair.
    """

    order: int = 4
    name: str = "pam"

    def __post_init__(self) -> None:
        if self.order < 2 or (self.order & (self.order - 1)) != 0:
            raise ValueError("order must be a power of two >= 2")
        self.bits_per_symbol = int(np.log2(self.order))
        raw_levels = np.arange(-(self.order - 1), self.order, 2, dtype=float)
        scale = np.sqrt(np.mean(raw_levels ** 2))
        self._levels = raw_levels / scale
        self.name = f"pam{self.order}"

    @property
    def levels(self) -> np.ndarray:
        """The normalized amplitude levels in increasing order."""
        return self._levels.copy()

    def _word_for_level_index(self, index: int) -> int:
        """Gray labelling: amplitude level ``index`` carries ``gray(index)``.

        Adjacent amplitude levels then differ in exactly one data bit, which
        is the property that makes nearest-level errors cost a single bit.
        """
        return index ^ (index >> 1)

    def modulate(self, bits) -> np.ndarray:
        bits = _check_bits(bits)
        words = pack_bits(bits, self.bits_per_symbol)
        # Invert the Gray labelling: data word -> amplitude level index.
        level_for_word = np.zeros(self.order, dtype=np.int64)
        for index in range(self.order):
            level_for_word[self._word_for_level_index(index)] = index
        indices = level_for_word[words]
        return self._levels[indices]

    def demodulate(self, statistics) -> np.ndarray:
        statistics = np.asarray(statistics, dtype=float)
        # Nearest-level detection, then read off the Gray label.
        distances = np.abs(statistics[:, None] - self._levels[None, :])
        indices = np.argmin(distances, axis=1)
        words = np.array([self._word_for_level_index(int(i)) for i in indices],
                         dtype=np.int64)
        return unpack_bits(words, self.bits_per_symbol)

    def average_symbol_energy(self) -> float:
        return float(np.mean(self._levels ** 2))


def make_modulator(scheme: str, **kwargs) -> Modulator:
    """Factory: build a modulator from a scheme name.

    Supported names: ``"bpsk"``, ``"ook"``, ``"ppm"``, ``"pam4"``, ``"pam8"``,
    or ``"pam"`` with an ``order`` keyword.
    """
    scheme = scheme.lower()
    if scheme == "bpsk":
        return BPSKModulator(**kwargs)
    if scheme == "ook":
        return OOKModulator(**kwargs)
    if scheme == "ppm":
        return BinaryPPMModulator(**kwargs)
    if scheme.startswith("pam"):
        suffix = scheme[3:]
        if suffix:
            kwargs.setdefault("order", int(suffix))
        return PAMModulator(**kwargs)
    raise ValueError(f"unknown modulation scheme {scheme!r}")


MODULATION_SCHEMES = ("bpsk", "ook", "ppm", "pam4")
"""The schemes compared by the discrete-prototype benchmark."""
