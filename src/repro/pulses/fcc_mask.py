"""FCC Part-15 UWB spectral mask and compliance checking.

The paper's very first system constraint is the FCC limit of
-41.3 dBm/MHz EIRP between 3.1 and 10.6 GHz.  This module provides the full
indoor mask as a function of frequency, a PSD-vs-mask compliance check, and a
helper that scales a transmit waveform to the maximum power the mask allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    FCC_EIRP_LIMIT_DBM_PER_MHZ,
    FCC_INDOOR_MASK_SEGMENTS,
    FCC_UWB_HIGH_HZ,
    FCC_UWB_LOW_HZ,
)
from repro.utils import dsp
from repro.utils.db import linear_to_db, watts_to_dbm

__all__ = [
    "fcc_indoor_mask_dbm_per_mhz",
    "MaskComplianceReport",
    "check_mask_compliance",
    "max_compliant_scale",
    "psd_dbm_per_mhz",
]


def fcc_indoor_mask_dbm_per_mhz(frequency_hz) -> np.ndarray:
    """Return the FCC indoor UWB mask [dBm/MHz] at the given frequencies."""
    freq = np.atleast_1d(np.asarray(frequency_hz, dtype=float))
    mask = np.full(freq.shape, FCC_EIRP_LIMIT_DBM_PER_MHZ)
    for low, high, limit in FCC_INDOOR_MASK_SEGMENTS:
        in_segment = (freq >= low) & (freq < high)
        mask[in_segment] = limit
    mask[freq >= FCC_INDOOR_MASK_SEGMENTS[-1][0]] = FCC_INDOOR_MASK_SEGMENTS[-1][2]
    if np.isscalar(frequency_hz):
        return float(mask[0])
    return mask


def psd_dbm_per_mhz(waveform, sample_rate_hz: float,
                    impedance_ohm: float = 50.0,
                    nperseg: int | None = None):
    """Estimate the PSD of a voltage waveform in dBm/MHz.

    Returns ``(frequencies_hz, psd_dbm_per_mhz)``.  The waveform is treated
    as a voltage across ``impedance_ohm``; for complex baseband input the
    frequencies are offsets from the carrier.
    """
    freqs, psd_v2_per_hz = dsp.estimate_psd(waveform, sample_rate_hz,
                                            nperseg=nperseg)
    psd_w_per_hz = psd_v2_per_hz / impedance_ohm
    psd_w_per_mhz = psd_w_per_hz * 1e6
    return freqs, watts_to_dbm(psd_w_per_mhz)


@dataclass(frozen=True)
class MaskComplianceReport:
    """Result of comparing a transmit PSD against the FCC mask."""

    compliant: bool
    worst_margin_db: float
    worst_frequency_hz: float
    frequencies_hz: np.ndarray
    psd_dbm_per_mhz: np.ndarray
    mask_dbm_per_mhz: np.ndarray

    def margin_at(self, frequency_hz: float) -> float:
        """Mask margin (mask minus PSD, dB) at the closest analysed frequency."""
        idx = int(np.argmin(np.abs(self.frequencies_hz - frequency_hz)))
        return float(self.mask_dbm_per_mhz[idx] - self.psd_dbm_per_mhz[idx])


def check_mask_compliance(waveform, sample_rate_hz: float,
                          carrier_hz: float = 0.0,
                          impedance_ohm: float = 50.0,
                          nperseg: int | None = None) -> MaskComplianceReport:
    """Check a transmit waveform against the FCC indoor mask.

    ``carrier_hz`` shifts the analysis frequencies when ``waveform`` is a
    complex baseband signal (pass 0 for an already-passband real waveform).
    Only non-negative absolute frequencies are evaluated.
    """
    freqs, psd = psd_dbm_per_mhz(waveform, sample_rate_hz,
                                 impedance_ohm=impedance_ohm, nperseg=nperseg)
    freqs = np.asarray(freqs, dtype=float) + carrier_hz
    keep = freqs >= 0
    freqs = freqs[keep]
    psd = np.asarray(psd, dtype=float)[keep]
    mask = fcc_indoor_mask_dbm_per_mhz(freqs)
    margin = mask - psd
    worst_idx = int(np.argmin(margin))
    return MaskComplianceReport(
        compliant=bool(np.all(margin >= 0.0)),
        worst_margin_db=float(margin[worst_idx]),
        worst_frequency_hz=float(freqs[worst_idx]),
        frequencies_hz=freqs,
        psd_dbm_per_mhz=psd,
        mask_dbm_per_mhz=np.asarray(mask, dtype=float),
    )


def max_compliant_scale(waveform, sample_rate_hz: float,
                        carrier_hz: float = 0.0,
                        impedance_ohm: float = 50.0,
                        backoff_db: float = 0.5,
                        nperseg: int | None = None) -> float:
    """Return the largest amplitude scale that keeps the waveform under the mask.

    The scale is computed from the worst-case margin of the unscaled waveform
    and reduced by ``backoff_db`` of headroom (scaling amplitude by ``a``
    moves the PSD by ``20*log10(a)`` dB).
    """
    report = check_mask_compliance(waveform, sample_rate_hz,
                                   carrier_hz=carrier_hz,
                                   impedance_ohm=impedance_ohm,
                                   nperseg=nperseg)
    allowed_db = report.worst_margin_db - backoff_db
    return float(10.0 ** (allowed_db / 20.0))


def in_band_average_psd_dbm_per_mhz(waveform, sample_rate_hz: float,
                                    carrier_hz: float = 0.0,
                                    impedance_ohm: float = 50.0) -> float:
    """Average PSD (dBm/MHz) inside the 3.1-10.6 GHz FCC band."""
    freqs, psd = psd_dbm_per_mhz(waveform, sample_rate_hz,
                                 impedance_ohm=impedance_ohm)
    freqs = np.asarray(freqs) + carrier_hz
    band = (freqs >= FCC_UWB_LOW_HZ) & (freqs <= FCC_UWB_HIGH_HZ)
    if not np.any(band):
        raise ValueError("waveform has no content in the 3.1-10.6 GHz band")
    linear = 10.0 ** (np.asarray(psd)[band] / 10.0)
    return float(linear_to_db(np.mean(linear)))


__all__.append("in_band_average_psd_dbm_per_mhz")
