"""Baseband UWB pulse shapes.

The paper's signal is "a sequence of 500 MHz bandwidth pulses".  This module
provides the standard pulse shapes used in pulsed-UWB systems:

* Gaussian pulse and its derivatives (monocycle, doublet) — the classic
  carrier-free shapes used by the first-generation baseband transceiver.
* Root-raised-cosine and rectangular envelopes — used as the 500 MHz
  baseband envelope that the gen-2 transmitter up-converts to one of the
  14 sub-bands.

All generators return a :class:`Pulse` carrying the waveform, the sample
rate, and convenience accessors (energy, duration, effective bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import dsp
from repro.utils.validation import require_positive

__all__ = [
    "Pulse",
    "gaussian_pulse",
    "gaussian_monocycle",
    "gaussian_doublet",
    "gaussian_derivative_pulse",
    "root_raised_cosine_pulse",
    "rectangular_pulse",
    "sinc_pulse",
    "sigma_for_bandwidth",
]


@dataclass(frozen=True)
class Pulse:
    """A finite-duration pulse waveform sampled at ``sample_rate_hz``.

    Attributes
    ----------
    waveform:
        Real or complex samples of the pulse.
    sample_rate_hz:
        Sampling rate of ``waveform``.
    name:
        Human-readable label used in reports and plots.
    """

    waveform: np.ndarray
    sample_rate_hz: float
    name: str = "pulse"

    def __post_init__(self) -> None:
        object.__setattr__(self, "waveform", np.asarray(self.waveform))
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        if self.waveform.ndim != 1:
            raise ValueError("waveform must be one-dimensional")

    @property
    def num_samples(self) -> int:
        """Number of samples in the pulse."""
        return int(self.waveform.size)

    @property
    def duration_s(self) -> float:
        """Pulse duration in seconds."""
        return self.num_samples / self.sample_rate_hz

    @property
    def energy(self) -> float:
        """Discrete energy of the pulse."""
        return dsp.signal_energy(self.waveform)

    @property
    def peak_amplitude(self) -> float:
        """Peak magnitude of the pulse."""
        if self.num_samples == 0:
            return 0.0
        return float(np.max(np.abs(self.waveform)))

    def time_axis(self) -> np.ndarray:
        """Time stamps of each sample, starting at zero."""
        return dsp.time_vector(self.num_samples, self.sample_rate_hz)

    def normalized_energy(self, target_energy: float = 1.0) -> "Pulse":
        """Return a copy scaled to the requested energy."""
        return Pulse(
            waveform=dsp.normalize_energy(self.waveform, target_energy),
            sample_rate_hz=self.sample_rate_hz,
            name=self.name,
        )

    def normalized_peak(self, target_peak: float = 1.0) -> "Pulse":
        """Return a copy scaled to the requested peak amplitude."""
        return Pulse(
            waveform=dsp.normalize_peak(self.waveform, target_peak),
            sample_rate_hz=self.sample_rate_hz,
            name=self.name,
        )

    def scaled(self, factor: float) -> "Pulse":
        """Return a copy multiplied by ``factor``."""
        return Pulse(
            waveform=self.waveform * factor,
            sample_rate_hz=self.sample_rate_hz,
            name=self.name,
        )

    def effective_bandwidth_hz(self, power_fraction: float = 0.99) -> float:
        """Occupied bandwidth containing ``power_fraction`` of the pulse power."""
        nperseg = min(self.num_samples, 4096)
        return dsp.occupied_bandwidth(
            self.waveform, self.sample_rate_hz,
            power_fraction=power_fraction, nperseg=nperseg,
        )


def sigma_for_bandwidth(bandwidth_hz: float) -> float:
    """Gaussian sigma (seconds) whose -10 dB two-sided bandwidth is ``bandwidth_hz``.

    A Gaussian pulse exp(-t^2 / (2 sigma^2)) has Fourier transform
    proportional to exp(-(2 pi f)^2 sigma^2 / 2); the -10 dB (power) point
    satisfies (2 pi f)^2 sigma^2 = ln(10), so the two-sided -10 dB bandwidth
    is B = sqrt(ln 10) / (pi sigma).
    """
    require_positive(bandwidth_hz, "bandwidth_hz")
    return float(np.sqrt(np.log(10.0)) / (np.pi * bandwidth_hz))


def _symmetric_time(duration_s: float, sample_rate_hz: float) -> np.ndarray:
    num_samples = max(int(round(duration_s * sample_rate_hz)), 3)
    if num_samples % 2 == 0:
        num_samples += 1
    half = (num_samples - 1) / 2.0
    return (np.arange(num_samples) - half) / sample_rate_hz


def gaussian_pulse(bandwidth_hz: float, sample_rate_hz: float,
                   truncation_sigmas: float = 4.0,
                   amplitude: float = 1.0) -> Pulse:
    """A Gaussian pulse whose -10 dB bandwidth is approximately ``bandwidth_hz``."""
    require_positive(sample_rate_hz, "sample_rate_hz")
    require_positive(truncation_sigmas, "truncation_sigmas")
    sigma = sigma_for_bandwidth(bandwidth_hz)
    t = _symmetric_time(2.0 * truncation_sigmas * sigma, sample_rate_hz)
    waveform = amplitude * np.exp(-t ** 2 / (2.0 * sigma ** 2))
    return Pulse(waveform=waveform, sample_rate_hz=sample_rate_hz,
                 name="gaussian")


def gaussian_derivative_pulse(order: int, bandwidth_hz: float,
                              sample_rate_hz: float,
                              truncation_sigmas: float = 4.0,
                              amplitude: float = 1.0) -> Pulse:
    """The ``order``-th derivative of a Gaussian pulse, peak-normalized.

    Order 1 is the classic monocycle, order 2 the doublet ("Mexican hat").
    Higher orders push the spectral peak upward, which is how carrier-free
    UWB transmitters shape their spectrum to fit the FCC mask.
    """
    if order < 0:
        raise ValueError("order must be >= 0")
    base = gaussian_pulse(bandwidth_hz, sample_rate_hz,
                          truncation_sigmas=truncation_sigmas, amplitude=1.0)
    waveform = base.waveform.copy()
    dt = 1.0 / sample_rate_hz
    for _ in range(order):
        waveform = np.gradient(waveform, dt)
    waveform = dsp.normalize_peak(waveform, amplitude)
    return Pulse(waveform=waveform, sample_rate_hz=sample_rate_hz,
                 name=f"gaussian_d{order}")


def gaussian_monocycle(bandwidth_hz: float, sample_rate_hz: float,
                       amplitude: float = 1.0) -> Pulse:
    """First derivative of a Gaussian (monocycle)."""
    pulse = gaussian_derivative_pulse(1, bandwidth_hz, sample_rate_hz,
                                      amplitude=amplitude)
    return Pulse(pulse.waveform, pulse.sample_rate_hz, name="monocycle")


def gaussian_doublet(bandwidth_hz: float, sample_rate_hz: float,
                     amplitude: float = 1.0) -> Pulse:
    """Second derivative of a Gaussian (doublet)."""
    pulse = gaussian_derivative_pulse(2, bandwidth_hz, sample_rate_hz,
                                      amplitude=amplitude)
    return Pulse(pulse.waveform, pulse.sample_rate_hz, name="doublet")


def root_raised_cosine_pulse(bandwidth_hz: float, sample_rate_hz: float,
                             rolloff: float = 0.25,
                             span_symbols: int = 6,
                             amplitude: float = 1.0) -> Pulse:
    """A root-raised-cosine pulse occupying roughly ``bandwidth_hz``.

    The symbol rate is chosen as ``bandwidth_hz / (1 + rolloff)`` so that the
    total occupied bandwidth equals ``bandwidth_hz``.
    """
    require_positive(sample_rate_hz, "sample_rate_hz")
    if not 0.0 <= rolloff <= 1.0:
        raise ValueError("rolloff must be in [0, 1]")
    if span_symbols < 1:
        raise ValueError("span_symbols must be >= 1")
    symbol_rate = bandwidth_hz / (1.0 + rolloff)
    ts = 1.0 / symbol_rate
    t = _symmetric_time(span_symbols * ts, sample_rate_hz)

    beta = rolloff
    waveform = np.zeros_like(t)
    for i, ti in enumerate(t):
        if abs(ti) < 1e-18:
            waveform[i] = 1.0 + beta * (4.0 / np.pi - 1.0)
        elif beta > 0 and abs(abs(ti) - ts / (4.0 * beta)) < 1e-15:
            waveform[i] = (beta / np.sqrt(2.0)) * (
                (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * beta))
                + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * beta))
            )
        else:
            x = ti / ts
            numerator = (np.sin(np.pi * x * (1.0 - beta))
                         + 4.0 * beta * x * np.cos(np.pi * x * (1.0 + beta)))
            denominator = np.pi * x * (1.0 - (4.0 * beta * x) ** 2)
            waveform[i] = numerator / denominator
    waveform = dsp.normalize_peak(waveform, amplitude)
    return Pulse(waveform=waveform, sample_rate_hz=sample_rate_hz, name="rrc")


def rectangular_pulse(duration_s: float, sample_rate_hz: float,
                      amplitude: float = 1.0) -> Pulse:
    """A rectangular pulse of the given duration."""
    require_positive(duration_s, "duration_s")
    require_positive(sample_rate_hz, "sample_rate_hz")
    num_samples = max(int(round(duration_s * sample_rate_hz)), 1)
    waveform = amplitude * np.ones(num_samples)
    return Pulse(waveform=waveform, sample_rate_hz=sample_rate_hz, name="rect")


def sinc_pulse(bandwidth_hz: float, sample_rate_hz: float,
               span_lobes: int = 8, amplitude: float = 1.0) -> Pulse:
    """A windowed sinc pulse with two-sided bandwidth ``bandwidth_hz``."""
    require_positive(bandwidth_hz, "bandwidth_hz")
    require_positive(sample_rate_hz, "sample_rate_hz")
    if span_lobes < 1:
        raise ValueError("span_lobes must be >= 1")
    lobe_duration = 1.0 / bandwidth_hz
    t = _symmetric_time(2.0 * span_lobes * lobe_duration, sample_rate_hz)
    waveform = np.sinc(bandwidth_hz * t) * np.hamming(t.size)
    waveform = dsp.normalize_peak(waveform, amplitude)
    return Pulse(waveform=waveform, sample_rate_hz=sample_rate_hz, name="sinc")
