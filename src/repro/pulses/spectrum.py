"""Spectral analysis helpers specific to UWB pulses.

These wrap the generic PSD estimator with UWB-oriented measures: fractional
bandwidth (the FCC's UWB definition), -10 dB bandwidth, spectral peak
location, and a compact summary used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FCC_MIN_UWB_BANDWIDTH_HZ
from repro.utils import dsp

__all__ = [
    "SpectrumSummary",
    "bandwidth_at_level",
    "fractional_bandwidth",
    "is_uwb_signal",
    "summarize_spectrum",
]


@dataclass(frozen=True)
class SpectrumSummary:
    """Compact description of a signal's spectrum."""

    peak_frequency_hz: float
    bandwidth_10db_hz: float
    occupied_bandwidth_99_hz: float
    fractional_bandwidth: float
    center_frequency_hz: float

    @property
    def qualifies_as_uwb(self) -> bool:
        """True when the signal meets the FCC UWB definition.

        The FCC defines a UWB signal as having either a -10 dB bandwidth of
        at least 500 MHz or a fractional bandwidth of at least 0.2.
        """
        return (self.bandwidth_10db_hz >= FCC_MIN_UWB_BANDWIDTH_HZ
                or self.fractional_bandwidth >= 0.2)


def _psd(waveform, sample_rate_hz: float, nperseg: int | None = None):
    waveform = np.asarray(waveform)
    if nperseg is None:
        nperseg = min(waveform.size, 4096)
    return dsp.estimate_psd(waveform, sample_rate_hz, nperseg=nperseg)


def bandwidth_at_level(waveform, sample_rate_hz: float,
                       level_db: float = -10.0,
                       nperseg: int | None = None) -> tuple[float, float, float]:
    """Return ``(f_low, f_high, bandwidth)`` at ``level_db`` below the PSD peak.

    The edges are the outermost frequencies where the PSD crosses the level,
    which is the convention used for the FCC -10 dB bandwidth.
    """
    if level_db >= 0:
        raise ValueError("level_db must be negative (below the peak)")
    freqs, psd = _psd(waveform, sample_rate_hz, nperseg)
    psd = np.asarray(psd, dtype=float)
    if psd.size == 0 or np.max(psd) <= 0:
        return 0.0, 0.0, 0.0
    threshold = np.max(psd) * 10.0 ** (level_db / 10.0)
    above = np.where(psd >= threshold)[0]
    f_low = float(freqs[above[0]])
    f_high = float(freqs[above[-1]])
    return f_low, f_high, f_high - f_low


def fractional_bandwidth(waveform, sample_rate_hz: float,
                         carrier_hz: float = 0.0,
                         nperseg: int | None = None) -> float:
    """FCC fractional bandwidth ``2 (fH - fL) / (fH + fL)`` at the -10 dB points.

    ``carrier_hz`` is added to the analysis frequencies for complex-baseband
    input so the denominator reflects the true RF centre frequency.
    """
    f_low, f_high, _ = bandwidth_at_level(waveform, sample_rate_hz,
                                          level_db=-10.0, nperseg=nperseg)
    f_low += carrier_hz
    f_high += carrier_hz
    if f_high + f_low <= 0:
        return 0.0
    return 2.0 * (f_high - f_low) / (f_high + f_low)


def is_uwb_signal(waveform, sample_rate_hz: float,
                  carrier_hz: float = 0.0) -> bool:
    """True when the waveform meets the FCC UWB bandwidth definition."""
    return summarize_spectrum(waveform, sample_rate_hz,
                              carrier_hz=carrier_hz).qualifies_as_uwb


def summarize_spectrum(waveform, sample_rate_hz: float,
                       carrier_hz: float = 0.0,
                       nperseg: int | None = None) -> SpectrumSummary:
    """Compute a :class:`SpectrumSummary` for a waveform."""
    freqs, psd = _psd(waveform, sample_rate_hz, nperseg)
    psd = np.asarray(psd, dtype=float)
    peak_frequency = float(freqs[int(np.argmax(psd))]) + carrier_hz
    f_low, f_high, bw10 = bandwidth_at_level(waveform, sample_rate_hz,
                                             level_db=-10.0, nperseg=nperseg)
    f_low += carrier_hz
    f_high += carrier_hz
    center = (f_low + f_high) / 2.0
    frac = 0.0 if center <= 0 else (f_high - f_low) / center
    occupied = dsp.occupied_bandwidth(
        waveform, sample_rate_hz, power_fraction=0.99,
        nperseg=nperseg if nperseg else min(np.asarray(waveform).size, 4096))
    return SpectrumSummary(
        peak_frequency_hz=peak_frequency,
        bandwidth_10db_hz=bw10,
        occupied_bandwidth_99_hz=occupied,
        fractional_bandwidth=frac,
        center_frequency_hz=center,
    )
