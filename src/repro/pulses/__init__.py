"""Pulse shaping, modulation, pulse trains, and spectral/FCC-mask analysis."""

from repro.pulses.fcc_mask import (
    MaskComplianceReport,
    check_mask_compliance,
    fcc_indoor_mask_dbm_per_mhz,
    max_compliant_scale,
    psd_dbm_per_mhz,
)
from repro.pulses.modulated import (
    ModulatedPulse,
    fig4_prototype_pulse,
    modulated_gaussian_pulse,
)
from repro.pulses.modulation import (
    BPSKModulator,
    BinaryPPMModulator,
    MODULATION_SCHEMES,
    Modulator,
    OOKModulator,
    PAMModulator,
    make_modulator,
)
from repro.pulses.shapes import (
    Pulse,
    gaussian_doublet,
    gaussian_derivative_pulse,
    gaussian_monocycle,
    gaussian_pulse,
    rectangular_pulse,
    root_raised_cosine_pulse,
    sigma_for_bandwidth,
    sinc_pulse,
)
from repro.pulses.spectrum import (
    SpectrumSummary,
    bandwidth_at_level,
    fractional_bandwidth,
    is_uwb_signal,
    summarize_spectrum,
)
from repro.pulses.train import PulseTrain, PulseTrainConfig, PulseTrainGenerator

__all__ = [
    "MaskComplianceReport",
    "check_mask_compliance",
    "fcc_indoor_mask_dbm_per_mhz",
    "max_compliant_scale",
    "psd_dbm_per_mhz",
    "ModulatedPulse",
    "fig4_prototype_pulse",
    "modulated_gaussian_pulse",
    "BPSKModulator",
    "BinaryPPMModulator",
    "MODULATION_SCHEMES",
    "Modulator",
    "OOKModulator",
    "PAMModulator",
    "make_modulator",
    "Pulse",
    "gaussian_doublet",
    "gaussian_derivative_pulse",
    "gaussian_monocycle",
    "gaussian_pulse",
    "rectangular_pulse",
    "root_raised_cosine_pulse",
    "sigma_for_bandwidth",
    "sinc_pulse",
    "SpectrumSummary",
    "bandwidth_at_level",
    "fractional_bandwidth",
    "is_uwb_signal",
    "summarize_spectrum",
    "PulseTrain",
    "PulseTrainConfig",
    "PulseTrainGenerator",
]
