"""Pulse-train generation: bits -> symbols -> a sampled pulse train.

The paper's transmitters send one or more pulses per bit ("Pulses per bit"
appears explicitly in the Fig. 3 block diagram); repeating the pulse spreads
the bit energy and lets the receiver trade data rate for SNR, which is one of
the knobs of the paper's power/QoS adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pulses.modulation import Modulator
from repro.pulses.shapes import Pulse
from repro.utils.validation import require_int, require_positive

__all__ = ["PulseTrainConfig", "PulseTrainGenerator", "PulseTrain"]


@dataclass(frozen=True)
class PulseTrainConfig:
    """Timing parameters of a pulse train.

    Attributes
    ----------
    pulse_repetition_interval_s:
        Time between consecutive pulses (the frame time).  The pulse
        repetition frequency (PRF) is its reciprocal.
    pulses_per_symbol:
        Number of identical pulses transmitted per modulation symbol.
    time_hopping_codes:
        Optional sequence of per-pulse time offsets (seconds) applied
        cyclically; models the time-hopping spreading codes classic pulsed
        UWB systems use to smooth their spectrum and separate users.
    """

    pulse_repetition_interval_s: float
    pulses_per_symbol: int = 1
    time_hopping_codes: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require_positive(self.pulse_repetition_interval_s,
                         "pulse_repetition_interval_s")
        require_int(self.pulses_per_symbol, "pulses_per_symbol", minimum=1)
        for offset in self.time_hopping_codes:
            if offset < 0 or offset >= self.pulse_repetition_interval_s:
                raise ValueError(
                    "time-hopping offsets must lie inside one repetition interval"
                )

    @property
    def pulse_repetition_frequency_hz(self) -> float:
        """Pulse repetition frequency (PRF)."""
        return 1.0 / self.pulse_repetition_interval_s

    @property
    def symbol_duration_s(self) -> float:
        """Duration of one modulation symbol."""
        return self.pulses_per_symbol * self.pulse_repetition_interval_s

    def symbol_rate_hz(self) -> float:
        """Symbol rate implied by the timing parameters."""
        return 1.0 / self.symbol_duration_s


@dataclass(frozen=True)
class PulseTrain:
    """A generated pulse train with bookkeeping for the receiver."""

    waveform: np.ndarray
    sample_rate_hz: float
    config: PulseTrainConfig
    symbols: np.ndarray
    pulse: Pulse

    @property
    def num_symbols(self) -> int:
        """Number of modulation symbols in the train."""
        return int(self.symbols.size)

    @property
    def duration_s(self) -> float:
        """Duration of the sampled waveform."""
        return self.waveform.size / self.sample_rate_hz

    def samples_per_symbol(self) -> int:
        """Number of samples spanned by one symbol."""
        return int(round(self.config.symbol_duration_s * self.sample_rate_hz))


class PulseTrainGenerator:
    """Generate sampled pulse trains from symbols.

    The generator places a (possibly amplitude-scaled, possibly time-shifted)
    copy of the prototype pulse at every pulse position.  It supports the
    amplitude schemes (BPSK/OOK/PAM) and binary PPM via the modulator's
    ``position_offsets``.
    """

    def __init__(self, pulse: Pulse, config: PulseTrainConfig,
                 modulator: Modulator) -> None:
        self.pulse = pulse
        self.config = config
        self.modulator = modulator
        self._samples_per_pri = int(round(
            config.pulse_repetition_interval_s * pulse.sample_rate_hz))
        if self._samples_per_pri < 1:
            raise ValueError(
                "pulse repetition interval shorter than one sample period"
            )
        if pulse.num_samples > self._samples_per_pri:
            raise ValueError(
                "pulse duration exceeds the pulse repetition interval; "
                "pulses would overlap"
            )

    @property
    def samples_per_pulse_interval(self) -> int:
        """Samples in one pulse repetition interval."""
        return self._samples_per_pri

    @property
    def samples_per_symbol(self) -> int:
        """Samples in one modulation symbol."""
        return self._samples_per_pri * self.config.pulses_per_symbol

    def generate_from_symbols(self, symbols) -> PulseTrain:
        """Build the sampled waveform for a sequence of symbols."""
        symbols = np.asarray(symbols)
        sample_rate = self.pulse.sample_rate_hz
        total_samples = symbols.size * self.samples_per_symbol
        is_complex = np.iscomplexobj(self.pulse.waveform)
        waveform = np.zeros(total_samples,
                            dtype=complex if is_complex else float)
        amplitudes = self.modulator.symbols_to_amplitudes(symbols)
        offsets = self.modulator.position_offsets
        hop = self.config.time_hopping_codes
        pulse_wave = self.pulse.waveform
        pulse_len = pulse_wave.size

        placed = (self._place_amplitude_grid(waveform, symbols, amplitudes)
                  if not hop and offsets is None else None)
        if placed is not None:
            return placed

        pulse_index = 0
        for sym_idx, symbol in enumerate(symbols):
            for rep in range(self.config.pulses_per_symbol):
                start_time = (sym_idx * self.config.symbol_duration_s
                              + rep * self.config.pulse_repetition_interval_s)
                if hop:
                    start_time += hop[pulse_index % len(hop)]
                if offsets is not None:
                    start_time += offsets[int(symbol)]
                start = int(round(start_time * sample_rate))
                stop = min(start + pulse_len, total_samples)
                if start >= total_samples:
                    pulse_index += 1
                    continue
                segment = pulse_wave[: stop - start]
                waveform[start:stop] += amplitudes[sym_idx] * segment
                pulse_index += 1

        return PulseTrain(
            waveform=waveform,
            sample_rate_hz=sample_rate,
            config=self.config,
            symbols=symbols.copy(),
            pulse=self.pulse,
        )

    def _place_amplitude_grid(self, waveform, symbols,
                              amplitudes) -> PulseTrain | None:
        """Vectorized placement for amplitude-only trains on the PRI grid.

        Valid only when every pulse start lands exactly on its nominal
        ``pulse_index * samples_per_pri`` position (the float start-time
        arithmetic of the general path is reproduced and checked, so the
        output is bit-identical to the per-pulse loop); returns ``None``
        to fall back to the loop when rounding jitter moves any start.
        """
        reps = self.config.pulses_per_symbol
        num_pulses = symbols.size * reps
        if num_pulses == 0:
            return PulseTrain(waveform=waveform,
                              sample_rate_hz=self.pulse.sample_rate_hz,
                              config=self.config, symbols=symbols.copy(),
                              pulse=self.pulse)
        start_times = (np.arange(symbols.size, dtype=float)[:, None]
                       * self.config.symbol_duration_s
                       + np.arange(reps, dtype=float)[None, :]
                       * self.config.pulse_repetition_interval_s)
        starts = np.rint(start_times.ravel()
                         * self.pulse.sample_rate_hz).astype(np.int64)
        nominal = np.arange(num_pulses, dtype=np.int64) * self._samples_per_pri
        if not np.array_equal(starts, nominal):
            return None
        shaped = waveform.reshape(num_pulses, self._samples_per_pri)
        amp = np.repeat(np.asarray(amplitudes), reps)
        shaped[:, :self.pulse.num_samples] = (amp[:, None]
                                              * self.pulse.waveform)
        return PulseTrain(waveform=waveform,
                          sample_rate_hz=self.pulse.sample_rate_hz,
                          config=self.config, symbols=symbols.copy(),
                          pulse=self.pulse)

    def generate_batch_from_symbols(self, symbols_batch) -> np.ndarray | None:
        """Vectorized waveform synthesis for a whole batch of symbol rows.

        ``symbols_batch`` is ``(num_trains, num_symbols)``; the return is
        the ``(num_trains, num_symbols * samples_per_symbol)`` sampled
        waveform batch — row ``i`` bitwise equal to
        ``generate_from_symbols(symbols_batch[i]).waveform``, because the
        placement is the same broadcast multiply
        :meth:`_place_amplitude_grid` performs, with the batch axis in
        front.  Only the amplitude-on-the-PRI-grid fast path batches:
        time hopping, position modulation, or grid rounding jitter return
        ``None`` so callers fall back to the per-train loop (exactly when
        the single-train generator would fall back too).
        """
        symbols_batch = np.asarray(symbols_batch)
        if symbols_batch.ndim != 2:
            raise ValueError("generate_batch_from_symbols expects a "
                             "(num_trains, num_symbols) batch")
        if self.config.time_hopping_codes \
                or self.modulator.position_offsets is not None:
            return None
        num_trains, num_symbols = symbols_batch.shape
        reps = self.config.pulses_per_symbol
        num_pulses = num_symbols * reps
        is_complex = np.iscomplexobj(self.pulse.waveform)
        dtype = complex if is_complex else float
        if num_pulses == 0:
            return np.zeros((num_trains, 0), dtype=dtype)
        start_times = (np.arange(num_symbols, dtype=float)[:, None]
                       * self.config.symbol_duration_s
                       + np.arange(reps, dtype=float)[None, :]
                       * self.config.pulse_repetition_interval_s)
        starts = np.rint(start_times.ravel()
                         * self.pulse.sample_rate_hz).astype(np.int64)
        nominal = np.arange(num_pulses, dtype=np.int64) * self._samples_per_pri
        if not np.array_equal(starts, nominal):
            return None
        amplitudes = np.asarray(
            self.modulator.symbols_to_amplitudes(symbols_batch))
        if amplitudes.shape != symbols_batch.shape:
            # Modulators whose amplitude map is not elementwise cannot
            # broadcast over the batch axis; fall back to the loop.
            return None
        batch = np.zeros((num_trains, num_pulses, self._samples_per_pri),
                         dtype=dtype)
        amp = np.repeat(amplitudes, reps, axis=1)
        batch[:, :, :self.pulse.num_samples] = (amp[:, :, None]
                                                * self.pulse.waveform)
        return batch.reshape(num_trains, num_pulses * self._samples_per_pri)

    def generate_from_bits(self, bits) -> PulseTrain:
        """Modulate bits and build the corresponding pulse train."""
        symbols = self.modulator.modulate(bits)
        return self.generate_from_symbols(symbols)

    def template(self) -> np.ndarray:
        """Return the matched-filter template for one pulse (unit energy)."""
        wave = self.pulse.waveform
        energy = np.sum(np.abs(wave) ** 2)
        if energy == 0:
            return wave.copy()
        return wave / np.sqrt(energy)

    def data_rate_bps(self) -> float:
        """Information rate implied by the modulator and timing."""
        return (self.modulator.bits_per_symbol
                * self.config.symbol_rate_hz())
