"""Carrier-modulated pulses (the Fig. 4 waveform and the gen-2 sub-band pulses).

Fig. 4 of the paper shows a 500 MHz-bandwidth pulse on a 5 GHz carrier with
about 150 mV peak amplitude on a 580 ps/div time base.  The gen-2 transmitter
produces exactly this class of waveform for each of the 14 sub-bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    FIG4_AMPLITUDE_V,
    FIG4_BANDWIDTH_HZ,
    FIG4_CARRIER_HZ,
    FIG4_NUM_DIVS,
    FIG4_TIME_PER_DIV_S,
)
from repro.pulses.shapes import Pulse, gaussian_pulse
from repro.utils import dsp
from repro.utils.validation import require_positive

__all__ = [
    "ModulatedPulse",
    "modulated_gaussian_pulse",
    "fig4_prototype_pulse",
]


@dataclass(frozen=True)
class ModulatedPulse:
    """A real passband pulse together with the baseband envelope it came from.

    Attributes
    ----------
    passband:
        The real passband waveform (what an oscilloscope would show).
    envelope:
        The complex baseband envelope before up-conversion.
    carrier_hz:
        Carrier (sub-band centre) frequency.
    sample_rate_hz:
        Sampling rate of both waveforms.
    """

    passband: np.ndarray
    envelope: np.ndarray
    carrier_hz: float
    sample_rate_hz: float
    name: str = "modulated_pulse"

    def __post_init__(self) -> None:
        object.__setattr__(self, "passband", np.asarray(self.passband, dtype=float))
        object.__setattr__(self, "envelope", np.asarray(self.envelope, dtype=complex))
        require_positive(self.carrier_hz, "carrier_hz")
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        if self.passband.shape != self.envelope.shape:
            raise ValueError("passband and envelope must have the same length")

    @property
    def num_samples(self) -> int:
        return int(self.passband.size)

    @property
    def duration_s(self) -> float:
        return self.num_samples / self.sample_rate_hz

    @property
    def peak_amplitude(self) -> float:
        return float(np.max(np.abs(self.passband))) if self.num_samples else 0.0

    @property
    def energy(self) -> float:
        return dsp.signal_energy(self.passband)

    def time_axis(self) -> np.ndarray:
        """Time stamps of each sample, starting at zero."""
        return dsp.time_vector(self.num_samples, self.sample_rate_hz)

    def occupied_bandwidth_hz(self, power_fraction: float = 0.99) -> float:
        """Occupied bandwidth of the passband waveform."""
        nperseg = min(self.num_samples, 4096)
        return dsp.occupied_bandwidth(self.passband, self.sample_rate_hz,
                                      power_fraction=power_fraction,
                                      nperseg=nperseg)

    def as_pulse(self) -> Pulse:
        """Return the passband waveform wrapped as a :class:`Pulse`."""
        return Pulse(self.passband, self.sample_rate_hz, name=self.name)


def modulated_gaussian_pulse(carrier_hz: float,
                             bandwidth_hz: float,
                             sample_rate_hz: float | None = None,
                             amplitude: float = 1.0,
                             phase_rad: float = 0.0,
                             truncation_sigmas: float = 4.0) -> ModulatedPulse:
    """A Gaussian-envelope pulse up-converted to ``carrier_hz``.

    When ``sample_rate_hz`` is omitted it defaults to four times the highest
    signal frequency (carrier plus half the bandwidth), which comfortably
    satisfies Nyquist for the passband waveform.
    """
    require_positive(carrier_hz, "carrier_hz")
    require_positive(bandwidth_hz, "bandwidth_hz")
    if sample_rate_hz is None:
        sample_rate_hz = 4.0 * (carrier_hz + bandwidth_hz / 2.0)
    require_positive(sample_rate_hz, "sample_rate_hz")
    nyquist = sample_rate_hz / 2.0
    if carrier_hz + bandwidth_hz / 2.0 >= nyquist:
        raise ValueError(
            "sample_rate_hz too low for the requested carrier and bandwidth"
        )
    base = gaussian_pulse(bandwidth_hz, sample_rate_hz,
                          truncation_sigmas=truncation_sigmas,
                          amplitude=1.0)
    envelope = base.waveform.astype(complex)
    passband = dsp.upconvert(envelope, carrier_hz, sample_rate_hz,
                             phase_rad=phase_rad)
    passband = dsp.normalize_peak(passband, amplitude)
    scale = amplitude / max(float(np.max(np.abs(base.waveform))), 1e-300)
    envelope = envelope * scale
    return ModulatedPulse(
        passband=passband,
        envelope=envelope,
        carrier_hz=carrier_hz,
        sample_rate_hz=sample_rate_hz,
        name=f"gaussian_on_{carrier_hz / 1e9:.2f}GHz",
    )


def fig4_prototype_pulse(sample_rate_hz: float | None = None) -> ModulatedPulse:
    """Reproduce the Fig. 4 waveform: a 500 MHz pulse on a 5 GHz carrier.

    The waveform is scaled to the figure's 150 mV peak amplitude and padded
    to span the figure's full 10-division (5.8 ns) time base.
    """
    pulse = modulated_gaussian_pulse(
        carrier_hz=FIG4_CARRIER_HZ,
        bandwidth_hz=FIG4_BANDWIDTH_HZ,
        sample_rate_hz=sample_rate_hz,
        amplitude=FIG4_AMPLITUDE_V,
    )
    span_s = FIG4_TIME_PER_DIV_S * FIG4_NUM_DIVS
    total_samples = int(round(span_s * pulse.sample_rate_hz))
    if total_samples > pulse.num_samples:
        pad = total_samples - pulse.num_samples
        left = pad // 2
        right = pad - left
        passband = np.pad(pulse.passband, (left, right))
        envelope = np.pad(pulse.envelope, (left, right))
    else:
        passband = pulse.passband
        envelope = pulse.envelope
    return ModulatedPulse(
        passband=passband,
        envelope=envelope,
        carrier_hz=pulse.carrier_hz,
        sample_rate_hz=pulse.sample_rate_hz,
        name="fig4_prototype_pulse",
    )
