"""repro: pulse-level simulation library reproducing the DATE 2005 paper
"Direct Conversion Pulsed UWB Transceiver Architecture" (Blazquez et al.).

The package is organized by subsystem:

* :mod:`repro.constants` — FCC limits, band plan, headline system numbers.
* :mod:`repro.pulses` — pulse shapes, modulation, pulse trains, FCC mask.
* :mod:`repro.rf` — antenna, LNA, direct-conversion mixer, LO/synthesizer,
  notch filter, composed front ends.
* :mod:`repro.adc` — flash / time-interleaved / SAR converters, jitter,
  power models.
* :mod:`repro.channel` — AWGN, 802.15.3a Saleh-Valenzuela multipath,
  narrowband interferers, path loss / link budget.
* :mod:`repro.dsp` — the digital back end: correlators, acquisition,
  tracking, channel estimation, RAKE, MLSE (Viterbi), spectral monitoring,
  digital notch, AGC, parallelization.
* :mod:`repro.phy` — preambles, CRC, scrambler, convolutional coding,
  packet framing.
* :mod:`repro.power` — per-block power models and system budgets.
* :mod:`repro.core` — the two transceiver generations, link simulation and
  the power/QoS/data-rate adaptation controller.
* :mod:`repro.sim` — the batched Monte-Carlo sweep engine, the scenario
  registry, pluggable array backends (NumPy / CuPy / JAX) and the
  shared-memory process fan-out (the fast path for BER grids across many
  environments).
* :mod:`repro.runs` — persistent sweep runs: the content-addressed result
  store (append-only JSONL or the queryable SQLite warehouse with ETL
  migration, compaction/GC and cross-run queries), the sharded/resumable
  run driver, curve artifacts and the ``python -m repro`` CLI.
* :mod:`repro.obs` — dependency-free run telemetry: spans/counters/gauges,
  the per-run event ledger (``events.jsonl`` + ``telemetry.json``), live
  CLI progress and the ``python -m repro report`` renderer.  Off by
  default and bitwise invisible to results.
* :mod:`repro.prototype` — the discrete prototype platform and the
  modulation-scheme comparison.

Quick start::

    from repro.core import Gen2Config, Gen2Transceiver

    transceiver = Gen2Transceiver(Gen2Config.fast_test_config())
    simulation = transceiver.simulate_packet(num_payload_bits=64, ebn0_db=14.0)
    print(simulation.result.crc_ok, simulation.result.bit_error_rate)
"""

# Defined before the subpackage imports so modules imported below (e.g.
# repro.runs.driver) can read the version during package initialization.
__version__ = "1.8.0"

from repro import (
    adc,
    channel,
    constants,
    core,
    dsp,
    obs,
    phy,
    power,
    prototype,
    pulses,
    rf,
    runs,
    sim,
    utils,
)
from repro.constants import DEFAULT_BAND_PLAN, BandPlan

__all__ = [
    "adc",
    "channel",
    "constants",
    "core",
    "dsp",
    "obs",
    "phy",
    "power",
    "prototype",
    "pulses",
    "rf",
    "runs",
    "sim",
    "utils",
    "BandPlan",
    "DEFAULT_BAND_PLAN",
    "__version__",
]
