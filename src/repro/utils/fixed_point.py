"""Fixed-point quantization helpers for the digital back end.

The paper's digital back end works on quantized samples (5-bit SAR ADC
outputs) and a channel estimate held "with a precision of up to four bits".
These helpers model signed fixed-point words with saturation, the way a
hardware datapath would hold them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "quantize_fixed", "quantization_noise_power"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``total_bits`` bits spanning ``full_scale``.

    The representable range is ``[-full_scale, +full_scale)`` divided into
    ``2**total_bits`` uniform steps (mid-rise convention on the analog side,
    two's-complement integer codes on the digital side).
    """

    total_bits: int
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ValueError("total_bits must be >= 1")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")

    @property
    def num_levels(self) -> int:
        """Number of distinct codes."""
        return 1 << self.total_bits

    @property
    def step(self) -> float:
        """Quantization step (LSB size) in the analog units of ``full_scale``."""
        return 2.0 * self.full_scale / self.num_levels

    @property
    def min_code(self) -> int:
        return -(self.num_levels // 2)

    @property
    def max_code(self) -> int:
        return self.num_levels // 2 - 1

    def quantize_to_codes(self, x) -> np.ndarray:
        """Quantize real values to integer codes with saturation."""
        x = np.asarray(x, dtype=float)
        codes = np.floor(x / self.step).astype(np.int64)
        return np.clip(codes, self.min_code, self.max_code)

    def codes_to_values(self, codes) -> np.ndarray:
        """Convert integer codes back to reconstructed analog values."""
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < self.min_code) or np.any(codes > self.max_code):
            raise ValueError("codes out of range for this format")
        return (codes.astype(float) + 0.5) * self.step

    def quantize(self, x) -> np.ndarray:
        """Quantize real (or complex, component-wise) values to reconstruction levels."""
        x = np.asarray(x)
        if np.iscomplexobj(x):
            real = self.codes_to_values(self.quantize_to_codes(x.real))
            imag = self.codes_to_values(self.quantize_to_codes(x.imag))
            return real + 1j * imag
        return self.codes_to_values(self.quantize_to_codes(x))


def quantize_fixed(x, total_bits: int, full_scale: float = 1.0) -> np.ndarray:
    """Convenience wrapper: quantize ``x`` with a fresh :class:`FixedPointFormat`."""
    return FixedPointFormat(total_bits=total_bits, full_scale=full_scale).quantize(x)


def quantization_noise_power(total_bits: int, full_scale: float = 1.0) -> float:
    """Theoretical quantization noise power ``step^2 / 12`` of a uniform quantizer."""
    fmt = FixedPointFormat(total_bits=total_bits, full_scale=full_scale)
    return fmt.step ** 2 / 12.0
