"""Shared utilities: dB conversions, DSP helpers, bit handling, fixed point,
filesystem helpers."""

from repro.utils import bits, db, dsp, fixed_point, io, validation
from repro.utils.db import (
    amplitude_to_db,
    db_to_amplitude,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)
from repro.utils.dsp import (
    downconvert,
    estimate_psd,
    normalize_energy,
    occupied_bandwidth,
    signal_energy,
    signal_power,
    upconvert,
)
from repro.utils.fixed_point import FixedPointFormat, quantize_fixed

__all__ = [
    "bits",
    "db",
    "dsp",
    "fixed_point",
    "io",
    "validation",
    "amplitude_to_db",
    "db_to_amplitude",
    "db_to_linear",
    "dbm_to_watts",
    "linear_to_db",
    "watts_to_dbm",
    "downconvert",
    "estimate_psd",
    "normalize_energy",
    "occupied_bandwidth",
    "signal_energy",
    "signal_power",
    "upconvert",
    "FixedPointFormat",
    "quantize_fixed",
]
