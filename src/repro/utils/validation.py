"""Small argument-validation helpers used across the library.

Validation failures always raise ``ValueError`` (or ``TypeError`` for type
problems) with a message naming the offending argument, so errors surface at
the public API boundary rather than deep inside numpy broadcasting.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
    "require_int",
    "as_1d_array",
    "require_same_length",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def require_in_range(value: float, low: float, high: float, name: str,
                     inclusive: bool = True) -> float:
    """Return ``value`` if it lies in ``[low, high]`` (or ``(low, high)``)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return float(value)


def require_probability(value: float, name: str) -> float:
    """Return ``value`` if it is a valid probability in [0, 1]."""
    return require_in_range(value, 0.0, 1.0, name)


def require_int(value, name: str, minimum: int | None = None) -> int:
    """Return ``value`` as an int, optionally enforcing a minimum."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def as_1d_array(x, name: str, dtype=None) -> np.ndarray:
    """Return ``x`` as a 1-D numpy array, raising if it has extra dimensions."""
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def require_same_length(a, b, name_a: str, name_b: str) -> None:
    """Raise ``ValueError`` when two sequences differ in length."""
    la, lb = len(a), len(b)
    if la != lb:
        raise ValueError(f"{name_a} (length {la}) and {name_b} (length {lb}) "
                         "must have the same length")
