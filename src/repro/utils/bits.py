"""Bit- and byte-level helpers used by the PHY layer and the digital back end."""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_bits",
    "bits_to_bytes",
    "bytes_to_bits",
    "int_to_bits",
    "bits_to_int",
    "bit_errors",
    "bit_error_rate",
    "hamming_distance",
    "pack_bits",
    "unpack_bits",
    "gray_encode",
    "gray_decode",
]


def random_bits(num_bits: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Return ``num_bits`` independent uniform bits as an int array of 0/1."""
    if num_bits < 0:
        raise ValueError("num_bits must be non-negative")
    if rng is None:
        rng = np.random.default_rng()
    return rng.integers(0, 2, size=num_bits, dtype=np.int64)


def _as_bit_array(bits) -> np.ndarray:
    bits = np.asarray(bits, dtype=np.int64).ravel()
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must contain only 0 and 1")
    return bits


def bits_to_bytes(bits) -> bytes:
    """Pack a 0/1 array (MSB first per byte) into a ``bytes`` object.

    The bit count must be a multiple of 8.
    """
    bits = _as_bit_array(bits)
    if bits.size % 8 != 0:
        raise ValueError("bit count must be a multiple of 8")
    if bits.size == 0:
        return b""
    packed = np.packbits(bits.astype(np.uint8))
    return packed.tobytes()


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack a ``bytes`` object into a 0/1 array, MSB first per byte."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.int64)
    arr = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(arr).astype(np.int64)


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Return ``value`` as a 0/1 array of length ``width``, MSB first."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=np.int64)


def bits_to_int(bits) -> int:
    """Interpret a 0/1 array (MSB first) as an unsigned integer."""
    bits = _as_bit_array(bits)
    value = 0
    for b in bits:
        value = (value << 1) | int(b)
    return value


def bit_errors(reference, received) -> int:
    """Count positions where two equal-length bit arrays differ."""
    ref = _as_bit_array(reference)
    rec = _as_bit_array(received)
    if ref.size != rec.size:
        raise ValueError(
            f"length mismatch: reference has {ref.size} bits, received {rec.size}"
        )
    return int(np.sum(ref != rec))


def bit_error_rate(reference, received) -> float:
    """Return the bit error rate between two equal-length bit arrays."""
    ref = _as_bit_array(reference)
    if ref.size == 0:
        return 0.0
    return bit_errors(reference, received) / ref.size


def hamming_distance(a: int, b: int) -> int:
    """Hamming distance between the binary representations of two integers."""
    return int(bin(a ^ b).count("1"))


def pack_bits(bits, word_width: int) -> np.ndarray:
    """Group a bit array into unsigned integers of ``word_width`` bits each.

    The bit count must be a multiple of ``word_width``; each word is MSB first.
    """
    bits = _as_bit_array(bits)
    if word_width <= 0:
        raise ValueError("word_width must be positive")
    if bits.size % word_width != 0:
        raise ValueError("bit count must be a multiple of word_width")
    if bits.size == 0:
        return np.zeros(0, dtype=np.int64)
    reshaped = bits.reshape(-1, word_width)
    weights = 1 << np.arange(word_width - 1, -1, -1, dtype=np.int64)
    return reshaped @ weights


def unpack_bits(words, word_width: int) -> np.ndarray:
    """Expand unsigned integers into a bit array of ``word_width`` bits each."""
    if word_width <= 0:
        raise ValueError("word_width must be positive")
    words = np.asarray(words, dtype=np.int64).ravel()
    if words.size and (np.any(words < 0) or np.any(words >= (1 << word_width))):
        raise ValueError(f"words must fit in {word_width} bits")
    out = np.zeros((words.size, word_width), dtype=np.int64)
    for i in range(word_width):
        out[:, word_width - 1 - i] = (words >> i) & 1
    return out.ravel()


def gray_encode(value: int) -> int:
    """Convert a binary integer to its Gray-code representation."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return value ^ (value >> 1)


def gray_decode(gray: int) -> int:
    """Convert a Gray-code integer back to binary."""
    if gray < 0:
        raise ValueError("gray must be non-negative")
    value = 0
    mask = gray
    while mask:
        value ^= mask
        mask >>= 1
    return value
