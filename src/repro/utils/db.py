"""Decibel and power-unit conversion helpers.

All converters accept scalars or numpy arrays and return the same shape.
Power ratios use ``10 log10``; amplitude/voltage ratios use ``20 log10``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "db_to_amplitude",
    "amplitude_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_vrms",
    "vrms_to_dbm",
    "noise_figure_to_temperature",
    "temperature_to_noise_figure",
]

_MIN_LINEAR = np.finfo(float).tiny


def db_to_linear(value_db):
    """Convert a power quantity in dB to a linear power ratio."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value_linear):
    """Convert a linear power ratio to dB.

    Values at or below zero are clipped to the smallest positive float so
    the result is a large negative number instead of ``-inf``/NaN.
    """
    clipped = np.maximum(np.asarray(value_linear, dtype=float), _MIN_LINEAR)
    return 10.0 * np.log10(clipped)


def db_to_amplitude(value_db):
    """Convert dB to a linear amplitude (voltage) ratio."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 20.0)


def amplitude_to_db(value_linear):
    """Convert a linear amplitude (voltage) ratio to dB."""
    clipped = np.maximum(np.abs(np.asarray(value_linear, dtype=float)), _MIN_LINEAR)
    return 20.0 * np.log10(clipped)


def dbm_to_watts(power_dbm):
    """Convert power in dBm to watts."""
    return 1e-3 * db_to_linear(power_dbm)


def watts_to_dbm(power_watts):
    """Convert power in watts to dBm."""
    return linear_to_db(np.asarray(power_watts, dtype=float) / 1e-3)


def dbm_to_vrms(power_dbm, impedance_ohm: float = 50.0):
    """Convert power in dBm to an RMS voltage across ``impedance_ohm``."""
    return np.sqrt(dbm_to_watts(power_dbm) * impedance_ohm)


def vrms_to_dbm(vrms, impedance_ohm: float = 50.0):
    """Convert an RMS voltage across ``impedance_ohm`` to power in dBm."""
    power_watts = np.square(np.asarray(vrms, dtype=float)) / impedance_ohm
    return watts_to_dbm(power_watts)


def noise_figure_to_temperature(noise_figure_db, reference_k: float = 290.0):
    """Convert a noise figure in dB to an equivalent noise temperature [K]."""
    factor = db_to_linear(noise_figure_db)
    return (factor - 1.0) * reference_k


def temperature_to_noise_figure(temperature_k, reference_k: float = 290.0):
    """Convert an equivalent noise temperature [K] to a noise figure in dB."""
    factor = 1.0 + np.asarray(temperature_k, dtype=float) / reference_k
    return linear_to_db(factor)
