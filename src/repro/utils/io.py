"""Filesystem helpers shared by the run/artifact persistence layers."""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (all-or-nothing).

    The content goes to a sibling temporary file, is fsynced, and then
    renamed over the target, so readers never observe a half-written
    file and a crash leaves either the old content or the new — never a
    torn mix.
    """
    path = Path(path)
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
