"""Generic DSP helpers shared across the library.

These are deliberately small, explicit functions (energy, power, resampling,
up/down-conversion, filtering, PSD estimation) so the transceiver models can
stay readable.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "signal_energy",
    "signal_power",
    "normalize_energy",
    "normalize_peak",
    "rms",
    "upconvert",
    "downconvert",
    "lowpass_filter",
    "bandpass_filter",
    "fractional_delay",
    "integer_delay",
    "resample_signal",
    "estimate_psd",
    "occupied_bandwidth",
    "add_complex_exponential",
    "time_vector",
    "next_pow2",
]


def signal_energy(x) -> float:
    """Return the discrete energy ``sum(|x|^2)`` of a signal."""
    x = np.asarray(x)
    return float(np.sum(np.abs(x) ** 2))


def signal_power(x) -> float:
    """Return the mean power ``mean(|x|^2)`` of a signal."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return float(np.mean(np.abs(x) ** 2))


def rms(x) -> float:
    """Return the RMS value of a signal."""
    return float(np.sqrt(signal_power(x)))


def normalize_energy(x, target_energy: float = 1.0) -> np.ndarray:
    """Scale ``x`` so its discrete energy equals ``target_energy``.

    A zero signal is returned unchanged.
    """
    x = np.asarray(x, dtype=complex if np.iscomplexobj(x) else float)
    energy = signal_energy(x)
    if energy == 0.0:
        return x.copy()
    return x * np.sqrt(target_energy / energy)


def normalize_peak(x, target_peak: float = 1.0) -> np.ndarray:
    """Scale ``x`` so its peak magnitude equals ``target_peak``."""
    x = np.asarray(x, dtype=complex if np.iscomplexobj(x) else float)
    peak = float(np.max(np.abs(x))) if x.size else 0.0
    if peak == 0.0:
        return x.copy()
    return x * (target_peak / peak)


def time_vector(num_samples: int, sample_rate_hz: float) -> np.ndarray:
    """Return ``num_samples`` time stamps at ``sample_rate_hz`` starting at 0."""
    if num_samples < 0:
        raise ValueError("num_samples must be non-negative")
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    return np.arange(num_samples) / sample_rate_hz


def upconvert(baseband, carrier_hz: float, sample_rate_hz: float,
              phase_rad: float = 0.0) -> np.ndarray:
    """Up-convert a complex baseband signal to a real passband signal.

    The passband signal is ``Re{ x(t) * exp(j*(2*pi*fc*t + phase)) }``.
    """
    x = np.asarray(baseband, dtype=complex)
    t = time_vector(x.size, sample_rate_hz)
    carrier = np.exp(1j * (2.0 * np.pi * carrier_hz * t + phase_rad))
    return np.real(x * carrier)


def downconvert(passband, carrier_hz: float, sample_rate_hz: float,
                phase_rad: float = 0.0,
                lowpass_bandwidth_hz: float | None = None) -> np.ndarray:
    """Down-convert a real passband signal to complex baseband.

    Multiplies by ``exp(-j*(2*pi*fc*t + phase))`` (factor 2 restores the
    baseband amplitude) and optionally low-pass filters to reject the
    double-frequency image.
    """
    x = np.asarray(passband, dtype=float)
    t = time_vector(x.size, sample_rate_hz)
    lo = np.exp(-1j * (2.0 * np.pi * carrier_hz * t + phase_rad))
    baseband = 2.0 * x * lo
    if lowpass_bandwidth_hz is not None:
        baseband = lowpass_filter(baseband, lowpass_bandwidth_hz, sample_rate_hz)
    return baseband


def _zero_phase_sos(sos: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply ``sosfiltfilt`` with a pad length safe for short inputs."""
    default_padlen = 3 * (2 * sos.shape[0] + 1 - min((sos[:, 2] == 0).sum(),
                                                     (sos[:, 5] == 0).sum()))
    padlen = int(min(default_padlen, max(x.shape[-1] - 2, 0)))
    return sp_signal.sosfiltfilt(sos, x, padlen=padlen)


def lowpass_filter(x, cutoff_hz: float, sample_rate_hz: float,
                   order: int = 6) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter.

    Works on real or complex input (the filter is applied to the real and
    imaginary parts separately, which is valid for a real filter kernel).
    """
    nyquist = sample_rate_hz / 2.0
    if not 0 < cutoff_hz < nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz must be in (0, {nyquist}) Hz"
        )
    sos = sp_signal.butter(order, cutoff_hz / nyquist, btype="low", output="sos")
    x = np.asarray(x)
    if np.iscomplexobj(x):
        return (_zero_phase_sos(sos, x.real)
                + 1j * _zero_phase_sos(sos, x.imag))
    return _zero_phase_sos(sos, x)


def bandpass_filter(x, low_hz: float, high_hz: float, sample_rate_hz: float,
                    order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth band-pass filter for real or complex input."""
    nyquist = sample_rate_hz / 2.0
    if not 0 < low_hz < high_hz < nyquist:
        raise ValueError("require 0 < low < high < Nyquist")
    sos = sp_signal.butter(order, [low_hz / nyquist, high_hz / nyquist],
                           btype="band", output="sos")
    x = np.asarray(x)
    if np.iscomplexobj(x):
        return (_zero_phase_sos(sos, x.real)
                + 1j * _zero_phase_sos(sos, x.imag))
    return _zero_phase_sos(sos, x)


def integer_delay(x, delay_samples: int) -> np.ndarray:
    """Delay (or advance, when negative) a signal by an integer number of samples.

    The output has the same length as the input; samples shifted in are zero.
    """
    x = np.asarray(x)
    out = np.zeros_like(x)
    n = x.size
    d = int(delay_samples)
    if d >= n or d <= -n:
        return out
    if d >= 0:
        out[d:] = x[: n - d]
    else:
        out[: n + d] = x[-d:]
    return out


def fractional_delay(x, delay_samples: float, num_taps: int = 63) -> np.ndarray:
    """Delay a signal by a possibly fractional number of samples.

    Uses a windowed-sinc interpolation filter for the fractional part and an
    integer shift for the whole part.  The output has the same length as the
    input.
    """
    x = np.asarray(x, dtype=complex if np.iscomplexobj(x) else float)
    int_part = int(np.floor(delay_samples))
    frac = float(delay_samples) - int_part
    if abs(frac) < 1e-12:
        return integer_delay(x, int_part)
    if num_taps % 2 == 0:
        num_taps += 1
    center = (num_taps - 1) // 2
    n = np.arange(num_taps)
    h = np.sinc(n - center - frac) * np.hamming(num_taps)
    h /= np.sum(h)
    filtered = np.convolve(x, h, mode="full")[center:center + x.size]
    return integer_delay(filtered, int_part)


def resample_signal(x, up: int, down: int) -> np.ndarray:
    """Polyphase resampling by a rational factor ``up/down``."""
    if up <= 0 or down <= 0:
        raise ValueError("up and down must be positive integers")
    x = np.asarray(x)
    if np.iscomplexobj(x):
        return (sp_signal.resample_poly(x.real, up, down)
                + 1j * sp_signal.resample_poly(x.imag, up, down))
    return sp_signal.resample_poly(x, up, down)


def estimate_psd(x, sample_rate_hz: float, nperseg: int | None = None,
                 return_onesided: bool | None = None):
    """Estimate the power spectral density with Welch's method.

    Returns ``(frequencies_hz, psd)`` where the PSD is in units of
    power-per-Hz of whatever squared unit ``x`` carries.  Complex input
    produces a two-sided spectrum centred (fftshifted) on 0 Hz.
    """
    x = np.asarray(x)
    if nperseg is None:
        nperseg = min(x.size, 1024)
    is_complex = np.iscomplexobj(x)
    if return_onesided is None:
        return_onesided = not is_complex
    freqs, psd = sp_signal.welch(
        x, fs=sample_rate_hz, nperseg=nperseg,
        return_onesided=return_onesided,
    )
    if not return_onesided:
        order = np.argsort(freqs)
        freqs = freqs[order]
        psd = psd[order]
    return freqs, psd


def occupied_bandwidth(x, sample_rate_hz: float, power_fraction: float = 0.99,
                       nperseg: int | None = None) -> float:
    """Return the bandwidth containing ``power_fraction`` of the signal power.

    The measure is symmetric in cumulative power: it returns the width of the
    frequency interval between the ``(1-p)/2`` and ``(1+p)/2`` quantiles of
    the cumulative PSD.
    """
    if not 0 < power_fraction < 1:
        raise ValueError("power_fraction must be in (0, 1)")
    freqs, psd = estimate_psd(x, sample_rate_hz, nperseg=nperseg)
    total = np.sum(psd)
    if total <= 0:
        return 0.0
    cumulative = np.cumsum(psd) / total
    lo_q = (1.0 - power_fraction) / 2.0
    hi_q = 1.0 - lo_q
    f_low = float(np.interp(lo_q, cumulative, freqs))
    f_high = float(np.interp(hi_q, cumulative, freqs))
    return f_high - f_low


def add_complex_exponential(x, frequency_hz: float, sample_rate_hz: float,
                            amplitude: float = 1.0,
                            phase_rad: float = 0.0) -> np.ndarray:
    """Return ``x`` plus a complex exponential tone of the given parameters."""
    x = np.asarray(x, dtype=complex)
    t = time_vector(x.size, sample_rate_hz)
    tone = amplitude * np.exp(1j * (2.0 * np.pi * frequency_hz * t + phase_rad))
    return x + tone


def next_pow2(n: int) -> int:
    """Return the smallest power of two that is >= ``n`` (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())
