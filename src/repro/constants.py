"""Physical constants, regulatory limits, and band-plan definitions.

This module encodes the numbers the paper quotes verbatim:

* the FCC UWB band (3.1--10.6 GHz) and its -41.3 dBm/MHz EIRP limit,
* the 14-channel (sub-band) plan of 500 MHz-bandwidth pulses,
* the multipath environment (about 20 ns RMS delay spread),
* the acquisition/preamble targets (about 20 us preamble, < 70 us sync),
* the headline data rates of the two transceiver generations.

Everything here is a plain module-level constant or a small frozen dataclass
so the rest of the library never hard-codes magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum [m/s]."""

BOLTZMANN = 1.380_649e-23
"""Boltzmann constant [J/K]."""

ROOM_TEMPERATURE_K = 290.0
"""Standard noise reference temperature [K]."""

THERMAL_NOISE_DBM_PER_HZ = -173.975
"""Thermal noise floor kT at 290 K expressed in dBm/Hz."""

# ---------------------------------------------------------------------------
# FCC UWB regulatory parameters (Section 1 of the paper)
# ---------------------------------------------------------------------------

FCC_UWB_LOW_HZ = 3.1e9
"""Lower edge of the FCC-approved UWB communication band [Hz]."""

FCC_UWB_HIGH_HZ = 10.6e9
"""Upper edge of the FCC-approved UWB communication band [Hz]."""

FCC_EIRP_LIMIT_DBM_PER_MHZ = -41.3
"""Maximum effective isotropic radiated power spectral density [dBm/MHz]."""

FCC_MIN_UWB_BANDWIDTH_HZ = 500e6
"""Minimum -10 dB bandwidth for a signal to qualify as UWB [Hz]."""

# FCC Part 15 indoor mask, out-of-band segments [dBm/MHz].
# Each tuple is (f_low_Hz, f_high_Hz, limit_dBm_per_MHz).
FCC_INDOOR_MASK_SEGMENTS = (
    (0.0, 0.96e9, -41.3),
    (0.96e9, 1.61e9, -75.3),
    (1.61e9, 1.99e9, -53.3),
    (1.99e9, 3.1e9, -51.3),
    (3.1e9, 10.6e9, -41.3),
    (10.6e9, 1.0e12, -51.3),
)

# ---------------------------------------------------------------------------
# Gen-2 (3.1-10.6 GHz) system parameters (Section 3)
# ---------------------------------------------------------------------------

GEN2_NUM_CHANNELS = 14
"""Number of 500 MHz sub-bands (channels) in the 3.1-10.6 GHz plan."""

GEN2_CHANNEL_BANDWIDTH_HZ = 500e6
"""Bandwidth of each pulsed sub-band [Hz]."""

GEN2_TARGET_DATA_RATE_BPS = 100e6
"""Target data rate of the second-generation system [bit/s]."""

GEN2_ADC_BITS = 5
"""Resolution of each of the two SAR ADCs (I and Q paths)."""

GEN2_ADC_RATE_HZ = 500e6
"""Nominal per-ADC sampling rate; the paper requires > 500 MSps."""

GEN2_CHANNEL_ESTIMATE_BITS = 4
"""Precision (bits) of the channel impulse-response estimate."""

# ---------------------------------------------------------------------------
# Gen-1 (baseband pulsed) system parameters (Section 2)
# ---------------------------------------------------------------------------

GEN1_ADC_RATE_HZ = 2e9
"""Aggregate sampling rate of the 4-way time-interleaved flash ADC [Sps]."""

GEN1_ADC_INTERLEAVE_FACTOR = 4
"""Number of time-interleaved flash ADC slices."""

GEN1_ADC_BITS = 4
"""Per-slice flash ADC resolution used in the gen-1 receiver."""

GEN1_DEMONSTRATED_RATE_BPS = 193e3
"""Demonstrated wireless link data rate of the gen-1 chip [bit/s]."""

GEN1_SYNC_TIME_LIMIT_S = 70e-6
"""Upper bound on gen-1 packet synchronization time reported in the paper."""

GEN1_TECHNOLOGY = "0.18um CMOS"
GEN1_SUPPLY_V = 1.8
GEN1_DIE_AREA_MM2 = 4.3 * 2.9

# ---------------------------------------------------------------------------
# Channel / acquisition targets (Section 1)
# ---------------------------------------------------------------------------

TYPICAL_RMS_DELAY_SPREAD_S = 20e-9
"""RMS delay spread of the indoor UWB channel assumed by the paper [s]."""

TARGET_PREAMBLE_DURATION_S = 20e-6
"""Preamble-duration target comparable with contemporary wireless systems."""

MIN_ADC_RATE_HZ = 500e6
"""Minimum ADC sampling rate called out in the system considerations."""

# ---------------------------------------------------------------------------
# Antenna (Fig. 2)
# ---------------------------------------------------------------------------

ANTENNA_LENGTH_M = 0.042
"""Long dimension of the planar elliptical antenna [m]."""

ANTENNA_WIDTH_M = 0.027
"""Short dimension of the planar elliptical antenna [m]."""

# ---------------------------------------------------------------------------
# Fig. 4 prototype pulse parameters
# ---------------------------------------------------------------------------

FIG4_CARRIER_HZ = 5e9
"""Carrier frequency of the pulse shown in Fig. 4 [Hz]."""

FIG4_BANDWIDTH_HZ = 500e6
"""Bandwidth of the pulse shown in Fig. 4 [Hz]."""

FIG4_AMPLITUDE_V = 0.150
"""Peak amplitude of the Fig. 4 waveform [V]."""

FIG4_TIME_PER_DIV_S = 580e-12
"""Oscilloscope time base of Fig. 4 [s/div]."""

FIG4_NUM_DIVS = 10
"""Number of horizontal divisions in a standard oscilloscope capture."""


@dataclass(frozen=True)
class BandPlan:
    """The gen-2 channelization of the 3.1-10.6 GHz band.

    The paper states the signal is "a sequence of 500 MHz bandwidth pulses
    that are upconverted to one of 14 channels (sub-bands) in the 3.1-10.6
    GHz band".  With 14 channels of 500 MHz each the plan occupies 7 GHz,
    i.e. edge-to-edge coverage of 3.1-10.1 GHz with centre frequencies
    starting at 3.35 GHz in 500 MHz steps (the MB-OFDM/802.15.3a band plan
    uses a 528 MHz raster; the paper's raster is 500 MHz).
    """

    num_channels: int = GEN2_NUM_CHANNELS
    channel_bandwidth_hz: float = GEN2_CHANNEL_BANDWIDTH_HZ
    band_low_hz: float = FCC_UWB_LOW_HZ
    band_high_hz: float = FCC_UWB_HIGH_HZ

    def center_frequency(self, channel: int) -> float:
        """Return the centre frequency [Hz] of ``channel`` (0-based)."""
        if not 0 <= channel < self.num_channels:
            raise ValueError(
                f"channel must be in [0, {self.num_channels}), got {channel}"
            )
        first_center = self.band_low_hz + self.channel_bandwidth_hz / 2.0
        return first_center + channel * self.channel_bandwidth_hz

    def channel_edges(self, channel: int) -> tuple[float, float]:
        """Return the (low, high) band edges [Hz] of ``channel``."""
        fc = self.center_frequency(channel)
        half = self.channel_bandwidth_hz / 2.0
        return fc - half, fc + half

    def all_center_frequencies(self) -> tuple[float, ...]:
        """Return the centre frequencies of every channel in the plan."""
        return tuple(
            self.center_frequency(ch) for ch in range(self.num_channels)
        )

    def channel_for_frequency(self, frequency_hz: float) -> int:
        """Return the channel index whose band contains ``frequency_hz``.

        Raises ``ValueError`` when the frequency falls outside the plan.
        """
        for ch in range(self.num_channels):
            low, high = self.channel_edges(ch)
            if low <= frequency_hz < high:
                return ch
        last_low, last_high = self.channel_edges(self.num_channels - 1)
        if frequency_hz == last_high:
            return self.num_channels - 1
        raise ValueError(
            f"frequency {frequency_hz / 1e9:.3f} GHz is outside the band plan"
        )

    def fits_in_fcc_band(self) -> bool:
        """True when every channel lies inside the FCC 3.1-10.6 GHz band."""
        low, _ = self.channel_edges(0)
        _, high = self.channel_edges(self.num_channels - 1)
        return low >= FCC_UWB_LOW_HZ and high <= FCC_UWB_HIGH_HZ


DEFAULT_BAND_PLAN = BandPlan()
"""Module-level singleton of the paper's 14-channel plan."""
