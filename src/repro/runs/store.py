"""Content-addressed result store for sweep measurements.

The store maps a *measurement key* — everything that determines a grid
point's result bit-for-bit: the point's content digest, the engine's
config digest (seed, generation, backend, quantization, base config) and
the payload size — to the measured :class:`repro.core.metrics.BERPoint`
counts.  Re-running any grid against a warm store therefore performs zero
simulation work, and partially measured points are topped up instead of
re-simulated.

Measurements are stored as *chunks*: ``(packet_offset, num_packets)``
spans of independent packets.  A point first measured with 20 000 packets
and later requested at 50 000 keeps its original chunk and only simulates
the 30 000-packet tail; counts are additive, so chunks merge into one
pooled :class:`BERPoint`.

Two persistence backends implement the same store contract
(``lookup`` / ``add_chunk`` / ``add_chunks`` / ``chunks_for`` /
``coverage`` / ``keys``, pinned cross-backend by
``tests/runs/store_contract.py``):

``"jsonl"`` (this module, the historical default)
    Append-only JSONL — one record per line, one file per writer — with
    each append issued as a single ``write`` on an ``O_APPEND``
    descriptor followed by fsync, so concurrent shard processes never
    interleave partial lines and a crash can at worst lose the final
    record.
``"sqlite"`` (:mod:`repro.runs.warehouse`)
    A single WAL-mode SQLite database with transactional multi-chunk
    ingest and indexed point metadata powering cross-run queries,
    compaction/GC and the ``python -m repro query`` command.

:meth:`ResultStore.open` selects a backend explicitly, from the
``REPRO_STORE_FORMAT`` environment variable, or by sniffing what a
directory already holds; reads are bit-identical across backends and
:func:`repro.runs.warehouse.migrate_store` converts between them.

Loading tolerates corrupt or truncated records (it skips them with a
warning, counts them in :attr:`ResultStore.corrupt_records` and bumps
the ``store.corrupt_lines`` telemetry counter), so a damaged cache
degrades to re-simulating the affected points rather than failing the
run.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.metrics import BERPoint
from repro.obs.recorder import active

__all__ = [
    "ResultStore",
    "STORE_FORMATS",
    "StoredChunk",
    "default_store_format",
    "detect_store_format",
    "measurement_key",
]

_SCHEMA_VERSION = 1

#: The store backends :meth:`ResultStore.open` can dispatch to.
STORE_FORMATS = ("jsonl", "sqlite")

#: Environment variable naming the default store format for new stores.
STORE_FORMAT_ENV = "REPRO_STORE_FORMAT"

#: File name of the SQLite warehouse inside a store directory.
SQLITE_FILENAME = "warehouse.sqlite"


def default_store_format() -> str:
    """The store format new stores get without an explicit choice.

    Reads ``REPRO_STORE_FORMAT`` (``"jsonl"`` or ``"sqlite"``); unset or
    empty means ``"jsonl"``, anything else raises ``ValueError``.
    """
    value = os.environ.get(STORE_FORMAT_ENV, "").strip().lower()
    if not value:
        return "jsonl"
    if value not in STORE_FORMATS:
        raise ValueError(
            f"{STORE_FORMAT_ENV}={value!r} names an unknown store format; "
            f"known formats: {', '.join(STORE_FORMATS)}")
    return value


def detect_store_format(directory) -> str | None:
    """The format an existing store directory holds, or ``None`` if empty.

    A ``warehouse.sqlite`` file wins over stray JSONL files (a migrated
    store keeps its JSONL sources around until they are removed), so a
    migrated directory keeps opening as SQLite.
    """
    directory = Path(directory)
    if (directory / SQLITE_FILENAME).is_file():
        return "sqlite"
    if directory.is_dir() and any(directory.glob("*.jsonl")):
        return "jsonl"
    return None


def measurement_key(point_digest: str, config_digest: str,
                    payload_bits_per_packet: int) -> str:
    """The content address of one grid point's measurement.

    ``num_packets`` is deliberately absent: packet count is coverage, not
    identity — the same key accumulates chunks as the budget escalates.
    """
    payload = json.dumps({
        "point": point_digest,
        "config": config_digest,
        "payload_bits_per_packet": int(payload_bits_per_packet),
        "schema": _SCHEMA_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoredChunk:
    """One contiguous span of simulated packets for a measurement key."""

    key: str
    packet_offset: int
    measurement: BERPoint

    @property
    def num_packets(self) -> int:
        """Packets this chunk contributes (its measurement's batch size)."""
        return self.measurement.packets_sent

    def to_record(self) -> dict:
        """Plain-type mapping written as one JSONL store line."""
        return {"schema": _SCHEMA_VERSION,
                "key": self.key,
                "packet_offset": int(self.packet_offset),
                "measurement": self.measurement.to_dict()}

    @classmethod
    def from_record(cls, record: dict) -> "StoredChunk":
        """Parse one store record, raising ``ValueError`` on malformed data."""
        if not isinstance(record, dict):
            raise ValueError("store record is not an object")
        if record.get("schema") != _SCHEMA_VERSION:
            raise ValueError(
                f"unsupported store schema {record.get('schema')!r}")
        key = record.get("key")
        if not isinstance(key, str) or len(key) != 64:
            raise ValueError("store record has a malformed key")
        offset = record.get("packet_offset")
        if not isinstance(offset, int) or offset < 0:
            raise ValueError("store record has a malformed packet_offset")
        measurement = BERPoint.from_dict(record.get("measurement", {}))
        if measurement.packets_sent == 0:
            raise ValueError("store record covers zero packets")
        return cls(key=key, packet_offset=offset, measurement=measurement)


class ResultStore:
    """JSONL-backed, content-addressed cache of sweep measurements.

    This class is both the ``"jsonl"`` backend and the base class every
    store backend derives from: the in-memory chunk index and all query
    methods (:meth:`lookup`, :meth:`coverage`, :meth:`chunks_for`, ...)
    are shared, so reads are bit-identical across backends by
    construction — a backend only overrides how chunks persist
    (:meth:`reload` and ``_persist``).

    Parameters
    ----------
    directory:
        The cache directory.  *Every* ``*.jsonl`` file in it is loaded, so
        shards that each append to their own file (``writer_name``) merge
        by simply sharing — or syncing into — one directory.
    writer_name:
        File new chunks are appended to (default ``store.jsonl``).  Shard
        drivers pass a per-shard name so concurrent machines never write
        the same file.  The SQLite backend keeps the name as a per-chunk
        provenance tag instead.
    """

    #: The backend's format name (what ``--store-format`` selects).
    format = "jsonl"

    def __init__(self, directory, writer_name: str = "store.jsonl") -> None:
        if not writer_name.endswith(".jsonl"):
            raise ValueError("writer_name must end in '.jsonl'")
        self.directory = Path(directory)
        self.writer_name = writer_name
        self.corrupt_records = 0
        self._chunks: dict[str, list[StoredChunk]] = {}
        self.reload()

    @classmethod
    def open(cls, directory, format: str | None = None,
             writer_name: str = "store.jsonl") -> "ResultStore":
        """Open a store directory with the right backend (the factory).

        ``format`` resolution, in order: an explicit ``"jsonl"`` /
        ``"sqlite"`` argument wins; otherwise whatever format the
        directory already holds (:func:`detect_store_format`) — an
        existing store never silently switches backend; otherwise
        :func:`default_store_format` (``REPRO_STORE_FORMAT``, default
        ``"jsonl"``) decides for brand-new stores.
        """
        if format is None:
            format = detect_store_format(directory) or default_store_format()
        if format == "jsonl":
            return ResultStore(directory, writer_name=writer_name)
        if format == "sqlite":
            from repro.runs.warehouse import SQLiteResultStore
            return SQLiteResultStore(directory, writer_name=writer_name)
        raise ValueError(f"unknown store format {format!r}; known formats: "
                         f"{', '.join(STORE_FORMATS)}")

    def close(self) -> None:
        """Release backend resources (a no-op for the JSONL backend)."""

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def reload(self) -> None:
        """Re-read every JSONL file in the store directory from scratch."""
        self._chunks = {}
        self.corrupt_records = 0
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.jsonl")):
            self._load_file(path)

    def _load_file(self, path: Path) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    chunk = StoredChunk.from_record(json.loads(line))
                except (json.JSONDecodeError, ValueError) as error:
                    self._note_corrupt_record(
                        f"{path.name}:{line_number}", error)
                    continue
                self._index(chunk)

    def _note_corrupt_record(self, location: str, error) -> None:
        # One warning + one telemetry tick per damaged record, shared by
        # every backend's loader: `python -m repro show` surfaces the
        # count, the `store.corrupt_lines` counter lands in the ledger.
        self.corrupt_records += 1
        warnings.warn(
            f"skipping corrupt result-store record ({location}): {error}",
            stacklevel=3)
        active().counter("store.corrupt_lines", backend=self.format)

    def _index(self, chunk: StoredChunk) -> None:
        chunks = self._chunks.setdefault(chunk.key, [])
        # Replays (the same chunk appended by a re-run shard, or the same
        # file loaded via reload) are idempotent.
        for existing in chunks:
            if existing.packet_offset == chunk.packet_offset:
                return
        chunks.append(chunk)
        chunks.sort(key=lambda c: c.packet_offset)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, key: str) -> bool:
        return key in self._chunks

    def keys(self) -> tuple[str, ...]:
        """Every measurement key present in the store, sorted."""
        return tuple(sorted(self._chunks))

    def stored_chunks(self, key: str) -> tuple[StoredChunk, ...]:
        """Every stored chunk for ``key``, ordered by packet offset.

        The raw records — what the migration ETL copies between backends
        and what the escalation-consistency validation pass inspects.
        """
        return tuple(self._chunks.get(key, ()))

    def chunks_for(self, key: str) -> dict[int, int]:
        """Every stored chunk for ``key`` as ``{packet_offset: num_packets}``.

        Unlike :meth:`coverage` this includes chunks *beyond* a gap —
        what a resuming driver needs to re-run only the chunks that are
        actually missing (a fault can leave the store with, say, offsets
        0 and 8 but not 4; re-simulating offset 8 would be wasted work).
        """
        return {chunk.packet_offset: chunk.num_packets
                for chunk in self._chunks.get(key, ())}

    def coverage(self, key: str) -> int:
        """Packets contiguously covered from offset 0 for ``key``."""
        covered = 0
        for chunk in self._chunks.get(key, ()):
            if chunk.packet_offset != covered:
                break  # a gap: later chunks are unreachable until filled
            covered += chunk.num_packets
        return covered

    def lookup(self, key: str, num_packets: int) -> BERPoint | None:
        """The pooled measurement for ``key`` when coverage suffices.

        Returns ``None`` (a miss) while fewer than ``num_packets`` packets
        are contiguously cached.  On a hit the *entire* contiguous prefix
        is pooled — a store holding 50 000 packets serves a 20 000-packet
        request with all 50 000 (more packets, tighter estimate); exact
        re-runs get bit-identical results because coverage then equals the
        request.
        """
        merged, covered = self._merge_prefix(key)
        if covered < num_packets:
            active().counter("store.lookup_misses", backend=self.format)
            return None
        active().counter("store.lookup_hits", backend=self.format)
        return merged

    def pooled(self, key: str) -> BERPoint | None:
        """The pooled contiguous-prefix measurement, however much is there.

        Unlike :meth:`lookup` there is no coverage requirement (and no
        hit/miss accounting): this is the query-layer accessor — curve
        assembly across runs wants whatever each key currently holds.
        Returns ``None`` when the store has no offset-0 chunk for
        ``key``.
        """
        merged, _ = self._merge_prefix(key)
        return merged

    def _merge_prefix(self, key: str) -> tuple[BERPoint | None, int]:
        merged: BERPoint | None = None
        covered = 0
        for chunk in self._chunks.get(key, ()):
            if chunk.packet_offset != covered:
                break
            covered += chunk.num_packets
            merged = (chunk.measurement if merged is None
                      else merged.merge(chunk.measurement))
        return merged, covered

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_chunk(self, key: str, packet_offset: int,
                  measurement: BERPoint) -> StoredChunk:
        """Persist one simulated chunk and index it.

        A single-item :meth:`add_chunks`; see there for the atomicity
        contract.
        """
        return self.add_chunks([(key, packet_offset, measurement)])[0]

    def add_chunks(self, items) -> list[StoredChunk]:
        """Ingest ``(key, packet_offset, measurement)`` triples as one batch.

        All conflict checking happens *before* anything is written, so a
        failing ingest (a chunk that collides with a different stored
        measurement) raises ``ValueError`` and leaves the store
        untouched.  Replays — chunks already present with identical
        measurements — are idempotent and skipped.  The fresh remainder
        persists as one unit: the JSONL backend serializes the batch
        into a single ``os.write`` on an ``O_APPEND`` descriptor + fsync
        (atomic with respect to concurrent appenders, torn at worst at
        the final record on crash), the SQLite backend commits one
        transaction (all rows or none).  Returns the stored chunk per
        item, in input order.
        """
        staged: list[StoredChunk] = []
        staged_slots: dict[tuple[str, int], StoredChunk] = {}
        results: list[StoredChunk] = []
        for key, packet_offset, measurement in items:
            chunk = StoredChunk(key=key, packet_offset=int(packet_offset),
                                measurement=measurement)
            slot = (chunk.key, chunk.packet_offset)
            existing = self._existing_chunk(chunk) or staged_slots.get(slot)
            if existing is not None:
                if existing.measurement != measurement:
                    raise ValueError(
                        f"store already holds a different measurement for "
                        f"key {key[:12]}... at offset {packet_offset}")
                results.append(existing)
                continue
            staged.append(chunk)
            staged_slots[slot] = chunk
            results.append(chunk)
        if staged:
            self._persist(staged)
            for chunk in staged:
                self._index(chunk)
            active().counter("store.chunks_added", len(staged),
                             backend=self.format)
            active().counter("store.packets_added",
                             sum(chunk.num_packets for chunk in staged),
                             backend=self.format)
        return results

    def _existing_chunk(self, chunk: StoredChunk) -> StoredChunk | None:
        for other in self._chunks.get(chunk.key, ()):
            if other.packet_offset == chunk.packet_offset:
                return other
        return None

    def _persist(self, chunks: list[StoredChunk]) -> None:
        # The JSONL backend's write primitive: the whole batch as one
        # O_APPEND write + fsync on this store's writer file.
        text = "".join(json.dumps(chunk.to_record(), sort_keys=True) + "\n"
                       for chunk in chunks)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / self.writer_name
        descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                             0o644)
        try:
            os.write(descriptor, text.encode("utf-8"))
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
