"""Content-addressed result store for sweep measurements.

The store maps a *measurement key* — everything that determines a grid
point's result bit-for-bit: the point's content digest, the engine's
config digest (seed, generation, backend, quantization, base config) and
the payload size — to the measured :class:`repro.core.metrics.BERPoint`
counts.  Re-running any grid against a warm store therefore performs zero
simulation work, and partially measured points are topped up instead of
re-simulated.

Measurements are stored as *chunks*: ``(packet_offset, num_packets)``
spans of independent packets.  A point first measured with 20 000 packets
and later requested at 50 000 keeps its original chunk and only simulates
the 30 000-packet tail; counts are additive, so chunks merge into one
pooled :class:`BERPoint`.

Persistence is append-only JSONL — one record per line, one file per
writer — with each append issued as a single ``write`` on an
``O_APPEND`` descriptor followed by fsync, so concurrent shard processes
never interleave partial lines and a crash can at worst lose the final
record.  Loading tolerates corrupt or truncated lines (it skips them with
a warning and counts them in :attr:`ResultStore.corrupt_records`), so a
damaged cache degrades to re-simulating the affected points rather than
failing the run.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.metrics import BERPoint
from repro.obs.recorder import active

__all__ = ["ResultStore", "StoredChunk", "measurement_key"]

_SCHEMA_VERSION = 1


def measurement_key(point_digest: str, config_digest: str,
                    payload_bits_per_packet: int) -> str:
    """The content address of one grid point's measurement.

    ``num_packets`` is deliberately absent: packet count is coverage, not
    identity — the same key accumulates chunks as the budget escalates.
    """
    payload = json.dumps({
        "point": point_digest,
        "config": config_digest,
        "payload_bits_per_packet": int(payload_bits_per_packet),
        "schema": _SCHEMA_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoredChunk:
    """One contiguous span of simulated packets for a measurement key."""

    key: str
    packet_offset: int
    measurement: BERPoint

    @property
    def num_packets(self) -> int:
        """Packets this chunk contributes (its measurement's batch size)."""
        return self.measurement.packets_sent

    def to_record(self) -> dict:
        """Plain-type mapping written as one JSONL store line."""
        return {"schema": _SCHEMA_VERSION,
                "key": self.key,
                "packet_offset": int(self.packet_offset),
                "measurement": self.measurement.to_dict()}

    @classmethod
    def from_record(cls, record: dict) -> "StoredChunk":
        """Parse one store record, raising ``ValueError`` on malformed data."""
        if not isinstance(record, dict):
            raise ValueError("store record is not an object")
        if record.get("schema") != _SCHEMA_VERSION:
            raise ValueError(
                f"unsupported store schema {record.get('schema')!r}")
        key = record.get("key")
        if not isinstance(key, str) or len(key) != 64:
            raise ValueError("store record has a malformed key")
        offset = record.get("packet_offset")
        if not isinstance(offset, int) or offset < 0:
            raise ValueError("store record has a malformed packet_offset")
        measurement = BERPoint.from_dict(record.get("measurement", {}))
        if measurement.packets_sent == 0:
            raise ValueError("store record covers zero packets")
        return cls(key=key, packet_offset=offset, measurement=measurement)


class ResultStore:
    """JSONL-backed, content-addressed cache of sweep measurements.

    Parameters
    ----------
    directory:
        The cache directory.  *Every* ``*.jsonl`` file in it is loaded, so
        shards that each append to their own file (``writer_name``) merge
        by simply sharing — or syncing into — one directory.
    writer_name:
        File new chunks are appended to (default ``store.jsonl``).  Shard
        drivers pass a per-shard name so concurrent machines never write
        the same file.
    """

    def __init__(self, directory, writer_name: str = "store.jsonl") -> None:
        if not writer_name.endswith(".jsonl"):
            raise ValueError("writer_name must end in '.jsonl'")
        self.directory = Path(directory)
        self.writer_name = writer_name
        self.corrupt_records = 0
        self._chunks: dict[str, list[StoredChunk]] = {}
        self.reload()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def reload(self) -> None:
        """Re-read every JSONL file in the store directory from scratch."""
        self._chunks = {}
        self.corrupt_records = 0
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.jsonl")):
            self._load_file(path)

    def _load_file(self, path: Path) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    chunk = StoredChunk.from_record(json.loads(line))
                except (json.JSONDecodeError, ValueError) as error:
                    self.corrupt_records += 1
                    warnings.warn(
                        f"skipping corrupt result-store record "
                        f"({path.name}:{line_number}): {error}",
                        stacklevel=2)
                    continue
                self._index(chunk)

    def _index(self, chunk: StoredChunk) -> None:
        chunks = self._chunks.setdefault(chunk.key, [])
        # Replays (the same chunk appended by a re-run shard, or the same
        # file loaded via reload) are idempotent.
        for existing in chunks:
            if existing.packet_offset == chunk.packet_offset:
                return
        chunks.append(chunk)
        chunks.sort(key=lambda c: c.packet_offset)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, key: str) -> bool:
        return key in self._chunks

    def keys(self) -> tuple[str, ...]:
        """Every measurement key present in the store, sorted."""
        return tuple(sorted(self._chunks))

    def chunks_for(self, key: str) -> dict[int, int]:
        """Every stored chunk for ``key`` as ``{packet_offset: num_packets}``.

        Unlike :meth:`coverage` this includes chunks *beyond* a gap —
        what a resuming driver needs to re-run only the chunks that are
        actually missing (a fault can leave the store with, say, offsets
        0 and 8 but not 4; re-simulating offset 8 would be wasted work).
        """
        return {chunk.packet_offset: chunk.num_packets
                for chunk in self._chunks.get(key, ())}

    def coverage(self, key: str) -> int:
        """Packets contiguously covered from offset 0 for ``key``."""
        covered = 0
        for chunk in self._chunks.get(key, ()):
            if chunk.packet_offset != covered:
                break  # a gap: later chunks are unreachable until filled
            covered += chunk.num_packets
        return covered

    def lookup(self, key: str, num_packets: int) -> BERPoint | None:
        """The pooled measurement for ``key`` when coverage suffices.

        Returns ``None`` (a miss) while fewer than ``num_packets`` packets
        are contiguously cached.  On a hit the *entire* contiguous prefix
        is pooled — a store holding 50 000 packets serves a 20 000-packet
        request with all 50 000 (more packets, tighter estimate); exact
        re-runs get bit-identical results because coverage then equals the
        request.
        """
        merged: BERPoint | None = None
        covered = 0
        for chunk in self._chunks.get(key, ()):
            if chunk.packet_offset != covered:
                break
            covered += chunk.num_packets
            merged = (chunk.measurement if merged is None
                      else merged.merge(chunk.measurement))
        if covered < num_packets:
            active().counter("store.lookup_misses")
            return None
        active().counter("store.lookup_hits")
        return merged

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_chunk(self, key: str, packet_offset: int,
                  measurement: BERPoint) -> StoredChunk:
        """Persist one simulated chunk and index it.

        The record is serialized to a single line and appended with one
        ``os.write`` on an ``O_APPEND`` descriptor + fsync: atomic with
        respect to concurrent appenders on the same file and durable up to
        the last completed record on crash.
        """
        chunk = StoredChunk(key=key, packet_offset=int(packet_offset),
                            measurement=measurement)
        existing = self._chunks.get(key, ())
        for other in existing:
            if other.packet_offset == chunk.packet_offset:
                if other.measurement != measurement:
                    raise ValueError(
                        f"store already holds a different measurement for "
                        f"key {key[:12]}... at offset {packet_offset}")
                return other
        line = json.dumps(chunk.to_record(), sort_keys=True) + "\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / self.writer_name
        descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                             0o644)
        try:
            os.write(descriptor, line.encode("utf-8"))
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
        self._index(chunk)
        active().counter("store.chunks_added")
        active().counter("store.packets_added", chunk.num_packets)
        return chunk
