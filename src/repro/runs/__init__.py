"""repro.runs: persistent, sharded, resumable sweep runs.

:mod:`repro.sim` made grids fast; this package makes them *cumulative*.
A :class:`ResultStore` content-addresses every measured grid point —
keyed on the point's content, the engine's config digest and the payload
size — so re-running any grid serves already-measured points from a
JSONL cache with zero simulation work, and raising ``num_packets`` only
simulates the missing tail chunk.  A :class:`RunDriver` splits a grid
into deterministic shards (``i`` of ``k``, executable on any machine
that sees the run directory), records a :class:`RunManifest` for crash
resume, and merges shard outputs into results bit-identical to an
unsharded run.  :func:`export_curves` writes merged curves as named
CSV/JSON artifacts that benchmarks and examples consume.

Two store backends implement the same contract: the append-only JSONL
format (the default) and the SQLite warehouse
(:class:`SQLiteResultStore`, selected with ``--store-format sqlite`` or
``REPRO_STORE_FORMAT``), which adds transactional ingest, indexed
cross-run queries (:func:`query_store`, ``python -m repro query``),
compaction/GC (:func:`gc_store`) and a verified JSONL-to-SQLite
migration path (:func:`migrate_store`, ``python -m repro store
migrate``).  Reads are bit-identical across backends.

Usage::

    from repro.runs import RunDriver
    from repro.sim import SweepEngine, sweep_grid

    engine = SweepEngine(generation="gen2", seed=7)
    grid = sweep_grid(range(0, 13), scenarios=("cm1",))

    driver = RunDriver.create("runs/cm1", engine, grid, num_packets=20000)
    driver.run_shard(0)            # simulates; a re-run is all cache hits
    result = driver.merge()        # -> repro.sim.SweepResult

Command line (same store format)::

    python -m repro sweep --scenario cm1 --ebn0 0:12:1 --packets 20000 \\
        --shard 0/4 --out runs/
    python -m repro resume --run runs/<name>
    python -m repro merge  --run runs/<name>
    python -m repro show   --run runs/<name>
"""

from repro.runs.artifacts import Artifact, export_curves, load_artifact
from repro.runs.driver import RunDriver, RunManifest, RunReport
from repro.runs.store import (STORE_FORMATS, ResultStore, StoredChunk,
                              default_store_format, detect_store_format,
                              measurement_key)
from repro.runs.warehouse import (SQLiteResultStore, gc_store, migrate_run,
                                  migrate_store, query_store,
                                  validate_store)

__all__ = [
    "Artifact",
    "ResultStore",
    "RunDriver",
    "RunManifest",
    "RunReport",
    "SQLiteResultStore",
    "STORE_FORMATS",
    "StoredChunk",
    "default_store_format",
    "detect_store_format",
    "export_curves",
    "gc_store",
    "load_artifact",
    "measurement_key",
    "migrate_run",
    "migrate_store",
    "query_store",
    "validate_store",
]
