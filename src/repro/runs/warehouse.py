"""SQLite-backed result warehouse: the queryable store backend.

The JSONL store (:mod:`repro.runs.store`) is append-only: perfect for
crash-safe shard writers, hopeless for "assemble BER vs Eb/N0 across
every CM1 run ever" — that is a full scan of every chunk file.  This
module keeps the exact store contract (reads are bit-identical: the
in-memory index and every query method are inherited from
:class:`~repro.runs.store.ResultStore`) while persisting into a single
WAL-mode SQLite database, which buys:

* **atomic multi-chunk ingest** — :meth:`ResultStore.add_chunks` commits
  one transaction, all rows or none;
* **indexed cross-run queries** — :func:`query_store` assembles curves
  by scenario / Eb-N0 range / config digest across all runs in a store
  without touching the simulator (``python -m repro query``);
* **compaction and garbage collection** — :func:`gc_store` merges each
  key's contiguous chunk prefix into one pooled row and applies a
  ``--keep-runs N`` retention policy (``python -m repro store gc``);
* **validation** — :func:`validate_store` flags chunks whose error
  counts are statistically inconsistent with the rest of their key's
  escalations (a stale cache, a seed bug, or a broken merge).

:func:`migrate_store` is the ETL path from the JSONL format
(``python -m repro store migrate``): it copies every chunk in one
transaction and verifies the result is lookup-identical before touching
anything else.  The database also carries two metadata tables the JSONL
format cannot express — per-key *point* descriptions (scenario,
modulation, Eb/N0, config digest) and a *run registry* (which run
required which keys) — populated by :class:`repro.runs.RunDriver`
whenever a shard executes against a SQLite store.

The store stays **single-writer**: one process ingests at a time
(SQLite's write lock enforces it; a 30 s busy timeout absorbs handoffs),
while concurrent readers are free under WAL.  A writer that out-waits
the timeout gets a :class:`StoreLockedError` naming the store directory
and the remediation — route concurrent writers through one broker
(``python -m repro serve``) or retry — rather than a bare
``sqlite3.OperationalError: database is locked``.
"""

from __future__ import annotations

import math
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.metrics import BERCurve, BERPoint
from repro.runs.store import (SQLITE_FILENAME, ResultStore, StoredChunk,
                              _SCHEMA_VERSION)

__all__ = [
    "GCReport",
    "MigrationReport",
    "QueryResult",
    "SQLiteResultStore",
    "StoreLockedError",
    "ValidationFinding",
    "gc_store",
    "migrate_run",
    "migrate_store",
    "query_store",
    "validate_store",
]


class StoreLockedError(RuntimeError):
    """Another process holds the warehouse's write lock.

    SQLite stores are **single-writer**: concurrent ingest from several
    processes serializes on the database write lock, and a writer that
    out-waits the busy timeout surfaces here (instead of as a raw
    ``sqlite3.OperationalError: database is locked`` deep in a shard).
    The message names the store and the two remediations: route
    concurrent writers through one broker (``python -m repro serve``,
    whose lease queue makes every commit a single-process write), or
    retry after the competing writer finishes.
    """

#: Version of the warehouse database schema (the ``meta`` table pins it).
WAREHOUSE_SCHEMA_VERSION = 1

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS chunks (
    key            TEXT NOT NULL,
    packet_offset  INTEGER NOT NULL,
    packets_sent   INTEGER NOT NULL,
    ebn0_db        REAL NOT NULL,
    bit_errors     INTEGER NOT NULL,
    total_bits     INTEGER NOT NULL,
    packets_failed INTEGER NOT NULL,
    writer         TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (key, packet_offset)
);
CREATE TABLE IF NOT EXISTS points (
    key                     TEXT PRIMARY KEY,
    scenario                TEXT NOT NULL,
    modulation              TEXT NOT NULL,
    adc_bits                INTEGER,
    ebn0_db                 REAL NOT NULL,
    config_digest           TEXT NOT NULL,
    payload_bits_per_packet INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS points_by_scenario
    ON points (scenario, ebn0_db);
CREATE INDEX IF NOT EXISTS points_by_config
    ON points (config_digest);
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    grid_digest TEXT NOT NULL,
    num_packets INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS requirements (
    run_id INTEGER NOT NULL,
    key    TEXT NOT NULL,
    PRIMARY KEY (run_id, key)
);
"""


class SQLiteResultStore(ResultStore):
    """The ``"sqlite"`` store backend: one WAL-mode database per store.

    Derives everything query-shaped from :class:`ResultStore` — only the
    persistence primitives differ: :meth:`reload` reads the ``chunks``
    table instead of JSONL files, and ingest commits one transaction per
    :meth:`~ResultStore.add_chunks` batch.  The database file is
    ``warehouse.sqlite`` inside the store directory and is created
    lazily on first write, so opening a not-yet-existing store never
    litters the filesystem.

    ``writer_name`` (the per-shard JSONL file name in the base class) is
    kept as a per-chunk provenance tag in the ``writer`` column.

    ``busy_timeout_s`` is how long a write waits for a competing
    writer's lock before raising :class:`StoreLockedError` (default
    30 s — generous enough to absorb shard handoffs; tests shrink it to
    exercise the conflict path without waiting).
    """

    #: The backend's format name (what ``--store-format`` selects).
    format = "sqlite"

    def __init__(self, directory, writer_name: str = "store.jsonl",
                 busy_timeout_s: float = 30.0) -> None:
        self._connection: sqlite3.Connection | None = None
        self.busy_timeout_s = float(busy_timeout_s)
        super().__init__(directory, writer_name=writer_name)

    # ------------------------------------------------------------------
    # Connection / schema
    # ------------------------------------------------------------------
    @property
    def database_path(self) -> Path:
        """Path of the warehouse database file inside the store directory."""
        return self.directory / SQLITE_FILENAME

    def _connect(self, create: bool = False) -> sqlite3.Connection | None:
        if self._connection is not None:
            return self._connection
        if not create and not self.database_path.is_file():
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.database_path,
                                     timeout=self.busy_timeout_s,
                                     isolation_level=None)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=FULL")
        connection.executescript(_SCHEMA_SQL)
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        if row is None:
            connection.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(WAREHOUSE_SCHEMA_VERSION),))
        elif int(row[0]) != WAREHOUSE_SCHEMA_VERSION:
            connection.close()
            raise ValueError(
                f"warehouse {self.database_path} uses schema version "
                f"{row[0]}, this code understands "
                f"{WAREHOUSE_SCHEMA_VERSION} (written by a newer version?)")
        self._connection = connection
        return connection

    def close(self) -> None:
        """Close the database connection (reopened lazily on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _begin_write(self, connection) -> None:
        """Open the single-writer transaction (``BEGIN IMMEDIATE``).

        A lock held past the busy timeout raises
        :class:`StoreLockedError` naming the store directory and the
        remediation, instead of leaking SQLite's bare ``database is
        locked`` with no hint of *which* database or what to do.
        """
        try:
            connection.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError as error:
            text = str(error).lower()
            if "locked" not in text and "busy" not in text:
                raise
            raise StoreLockedError(
                f"result store {self.directory} is locked by another "
                f"writer (waited {self.busy_timeout_s:g}s for "
                f"{self.database_path.name}).  The SQLite warehouse is "
                "single-writer: route concurrent writers through one "
                f"broker (python -m repro serve --store {self.directory} "
                "serializes commits via chunk leases), or retry after "
                "the competing writer finishes") from None

    # ------------------------------------------------------------------
    # Persistence primitives (the backend contract)
    # ------------------------------------------------------------------
    def reload(self) -> None:
        """Rebuild the in-memory chunk index from the ``chunks`` table."""
        self._chunks = {}
        self.corrupt_records = 0
        connection = self._connect(create=False)
        if connection is None:
            return
        rows = connection.execute(
            "SELECT key, packet_offset, ebn0_db, bit_errors, total_bits, "
            "packets_sent, packets_failed FROM chunks "
            "ORDER BY key, packet_offset")
        for row in rows:
            try:
                chunk = StoredChunk.from_record(self._row_to_record(row))
            except ValueError as error:
                self._note_corrupt_record(
                    f"{SQLITE_FILENAME}:{row[0][:12]}@{row[1]}", error)
                continue
            self._index(chunk)

    @staticmethod
    def _row_to_record(row) -> dict:
        # Chunk rows round-trip through the same record dict (and the
        # same from_record validation) as JSONL lines — one parse path,
        # bit-identical across backends.
        (key, offset, ebn0_db, bit_errors, total_bits, packets_sent,
         packets_failed) = row
        return {"schema": _SCHEMA_VERSION, "key": key,
                "packet_offset": offset,
                "measurement": {"ebn0_db": ebn0_db,
                                "bit_errors": bit_errors,
                                "total_bits": total_bits,
                                "packets_sent": packets_sent,
                                "packets_failed": packets_failed}}

    def _persist(self, chunks: list[StoredChunk]) -> None:
        connection = self._connect(create=True)
        fresh = self._drop_already_stored(connection, chunks)
        if not fresh:
            return
        rows = [(chunk.key, chunk.packet_offset,
                 chunk.measurement.packets_sent,
                 float(chunk.measurement.ebn0_db),
                 chunk.measurement.bit_errors,
                 chunk.measurement.total_bits,
                 chunk.measurement.packets_failed,
                 self.writer_name) for chunk in fresh]
        self._begin_write(connection)
        try:
            connection.executemany(
                "INSERT INTO chunks (key, packet_offset, packets_sent, "
                "ebn0_db, bit_errors, total_bits, packets_failed, writer) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)", rows)
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        connection.execute("COMMIT")

    def _drop_already_stored(self, connection, chunks):
        # The in-memory index already vetoed known duplicates, but the
        # database may hold rows this process has not loaded (another
        # writer got there first).  Identical rows are idempotent
        # replays; a differing row is a conflict — raised before any
        # insert, keeping the whole batch all-or-nothing.
        fresh = []
        for chunk in chunks:
            row = connection.execute(
                "SELECT key, packet_offset, ebn0_db, bit_errors, "
                "total_bits, packets_sent, packets_failed FROM chunks "
                "WHERE key = ? AND packet_offset = ?",
                (chunk.key, chunk.packet_offset)).fetchone()
            if row is None:
                fresh.append(chunk)
                continue
            stored = StoredChunk.from_record(self._row_to_record(row))
            if stored.measurement != chunk.measurement:
                raise ValueError(
                    f"store already holds a different measurement for "
                    f"key {chunk.key[:12]}... at offset "
                    f"{chunk.packet_offset}")
        return fresh

    # ------------------------------------------------------------------
    # Warehouse metadata (what JSONL cannot express)
    # ------------------------------------------------------------------
    def describe_keys(self, entries) -> None:
        """Record point metadata for measurement keys.

        ``entries`` is an iterable of ``(key, info)`` pairs where
        ``info`` maps ``scenario`` / ``modulation`` / ``adc_bits`` /
        ``ebn0_db`` / ``config_digest`` / ``payload_bits_per_packet``.
        The metadata is what makes :func:`query_store` able to filter by
        physics rather than by opaque hash; re-describing a key
        overwrites (the description is derived, not measured).
        """
        rows = [(key,
                 str(info["scenario"]), str(info["modulation"]),
                 None if info.get("adc_bits") is None
                 else int(info["adc_bits"]),
                 float(info["ebn0_db"]), str(info["config_digest"]),
                 int(info["payload_bits_per_packet"]))
                for key, info in entries]
        if not rows:
            return
        connection = self._connect(create=True)
        self._begin_write(connection)
        try:
            connection.executemany(
                "INSERT OR REPLACE INTO points (key, scenario, modulation, "
                "adc_bits, ebn0_db, config_digest, "
                "payload_bits_per_packet) VALUES (?, ?, ?, ?, ?, ?, ?)",
                rows)
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        connection.execute("COMMIT")

    def point_info(self, key: str) -> dict | None:
        """The recorded point metadata for ``key``, or ``None``."""
        connection = self._connect(create=False)
        if connection is None:
            return None
        row = connection.execute(
            "SELECT scenario, modulation, adc_bits, ebn0_db, "
            "config_digest, payload_bits_per_packet FROM points "
            "WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        return {"scenario": row[0], "modulation": row[1],
                "adc_bits": row[2], "ebn0_db": row[3],
                "config_digest": row[4], "payload_bits_per_packet": row[5]}

    def register_run(self, name: str, grid_digest: str, num_packets: int,
                     keys) -> int:
        """Record that a run requires ``keys`` (the GC retention unit).

        Re-registering the same ``(name, grid_digest, num_packets)``
        replaces the old entry with a fresh (more recent) ``run_id``, so
        re-executions refresh a run's retention recency instead of
        duplicating it.  Returns the new ``run_id``.
        """
        keys = tuple(keys)
        connection = self._connect(create=True)
        self._begin_write(connection)
        try:
            stale = [row[0] for row in connection.execute(
                "SELECT run_id FROM runs WHERE name = ? AND "
                "grid_digest = ? AND num_packets = ?",
                (name, grid_digest, int(num_packets)))]
            for run_id in stale:
                connection.execute(
                    "DELETE FROM requirements WHERE run_id = ?", (run_id,))
                connection.execute(
                    "DELETE FROM runs WHERE run_id = ?", (run_id,))
            cursor = connection.execute(
                "INSERT INTO runs (name, grid_digest, num_packets) "
                "VALUES (?, ?, ?)", (name, grid_digest, int(num_packets)))
            run_id = int(cursor.lastrowid)
            connection.executemany(
                "INSERT OR IGNORE INTO requirements (run_id, key) "
                "VALUES (?, ?)", [(run_id, key) for key in keys])
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        connection.execute("COMMIT")
        return run_id

    def registered_runs(self) -> tuple[dict, ...]:
        """Every registered run, most recent first.

        Each entry maps ``run_id`` / ``name`` / ``grid_digest`` /
        ``num_packets`` / ``num_keys``.
        """
        connection = self._connect(create=False)
        if connection is None:
            return ()
        rows = connection.execute(
            "SELECT r.run_id, r.name, r.grid_digest, r.num_packets, "
            "COUNT(q.key) FROM runs r LEFT JOIN requirements q "
            "ON q.run_id = r.run_id GROUP BY r.run_id "
            "ORDER BY r.run_id DESC")
        return tuple({"run_id": row[0], "name": row[1],
                      "grid_digest": row[2], "num_packets": row[3],
                      "num_keys": row[4]} for row in rows)


# ----------------------------------------------------------------------
# ETL: JSONL -> SQLite migration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MigrationReport:
    """What a JSONL -> SQLite migration did (or would do, on dry run)."""

    directory: Path
    dry_run: bool
    keys: int
    chunks: int
    chunks_copied: int
    chunks_already: int
    jsonl_files: int
    removed_files: int = 0
    notes: tuple[str, ...] = ()

    def summary(self) -> str:
        """A short human-readable account of the migration."""
        verb = "would copy" if self.dry_run else "copied"
        text = (f"{verb} {self.chunks_copied} of {self.chunks} chunk(s) "
                f"across {self.keys} key(s) from {self.jsonl_files} JSONL "
                f"file(s) into {SQLITE_FILENAME}")
        if self.chunks_already:
            text += f" ({self.chunks_already} already present)"
        if self.removed_files:
            text += f"; removed {self.removed_files} JSONL file(s)"
        for note in self.notes:
            text += f"\n{note}"
        return text


def migrate_store(directory, dry_run: bool = False,
                  remove_jsonl: bool = False) -> MigrationReport:
    """Convert a JSONL store directory to the SQLite warehouse format.

    Every chunk of every key is ingested in **one transaction** and the
    result is verified lookup-identical (same ``chunks_for`` and pooled
    prefix for every key) before anything else happens; a verification
    failure raises with the database rolled into a consistent state but
    the JSONL sources untouched.  With ``dry_run`` nothing is written —
    the report describes what a real run would copy, diffed against any
    warehouse already present.  With ``remove_jsonl`` the JSONL source
    files are deleted *after* verification (the default keeps them;
    :func:`repro.runs.store.detect_store_format` prefers the warehouse
    either way).
    """
    directory = Path(directory)
    source = ResultStore(directory)
    items = [(chunk.key, chunk.packet_offset, chunk.measurement)
             for key in source.keys()
             for chunk in source.stored_chunks(key)]
    jsonl_files = sorted(directory.glob("*.jsonl")) \
        if directory.is_dir() else []

    if dry_run:
        existing = SQLiteResultStore(directory) \
            if (directory / SQLITE_FILENAME).is_file() else None
        already = 0
        if existing is not None:
            for key, offset, measurement in items:
                stored = existing.chunks_for(key)
                if offset in stored:
                    already += 1
            existing.close()
        return MigrationReport(
            directory=directory, dry_run=True, keys=len(source),
            chunks=len(items), chunks_copied=len(items) - already,
            chunks_already=already, jsonl_files=len(jsonl_files))

    target = SQLiteResultStore(directory)
    try:
        before = sum(len(target.chunks_for(key)) for key in target.keys())
        target.add_chunks(items)
        copied = sum(len(target.chunks_for(key))
                     for key in target.keys()) - before
        _verify_equivalent(source, target)
    finally:
        target.close()
    removed = 0
    if remove_jsonl:
        for path in jsonl_files:
            path.unlink()
            removed += 1
    return MigrationReport(
        directory=directory, dry_run=False, keys=len(source),
        chunks=len(items), chunks_copied=copied,
        chunks_already=len(items) - copied,
        jsonl_files=len(jsonl_files), removed_files=removed)


def _verify_equivalent(source: ResultStore, target: ResultStore) -> None:
    """Raise unless ``target`` serves every ``source`` key identically."""
    for key in source.keys():
        if source.chunks_for(key) != target.chunks_for(key):
            raise ValueError(
                f"migration verification failed: chunk layout differs for "
                f"key {key[:12]}...")
        if source.pooled(key) != target.pooled(key):
            raise ValueError(
                f"migration verification failed: pooled measurement "
                f"differs for key {key[:12]}...")


def migrate_run(run_dir, dry_run: bool = False,
                remove_jsonl: bool = False) -> MigrationReport:
    """Migrate a run directory's store and update its manifest.

    On top of :func:`migrate_store` over ``<run>/store``, this flips the
    manifest's ``store_format`` to ``"sqlite"`` and — when the engine
    can be rebuilt from the manifest — populates the warehouse's point
    metadata and run registry so the migrated store is immediately
    queryable and GC-able.  Runs created from a custom base config skip
    the metadata step (noted in the report); their chunks migrate fine.
    """
    from dataclasses import replace

    from repro.runs.driver import RunDriver, RunManifest

    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir)
    report = migrate_store(run_dir / "store", dry_run=dry_run,
                           remove_jsonl=remove_jsonl)
    notes = list(report.notes)
    if dry_run:
        notes.append(f"would set store_format=sqlite in {run_dir}"
                     "/manifest.json")
        return replace(report, notes=tuple(notes))
    # Flip the manifest before registering: the driver opens whatever
    # backend the manifest names, and the registry lives in sqlite.
    replace(manifest, store_format="sqlite").save(run_dir)
    notes.append(f"manifest store_format set to sqlite in {run_dir}")
    if manifest.custom_config:
        notes.append("run uses a custom base config: point metadata and "
                     "run registry not populated (queries need them)")
    else:
        driver = RunDriver.open(run_dir)
        store = driver.open_store()
        try:
            driver.register_with_warehouse(store)
        finally:
            store.close()
        notes.append("point metadata and run registry populated")
    return replace(report, notes=tuple(notes))


# ----------------------------------------------------------------------
# Compaction / garbage collection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GCReport:
    """What :func:`gc_store` did (or would do, on dry run)."""

    dry_run: bool
    keys_total: int
    keys_live: int
    keys_dropped: int
    chunks_dropped: int
    chunks_compacted: int
    stranded_dropped: int
    runs_dropped: int
    bytes_before: int
    bytes_after: int

    def summary(self) -> str:
        """A short human-readable account of the collection."""
        verb = "would drop" if self.dry_run else "dropped"
        text = (f"{verb} {self.keys_dropped} of {self.keys_total} key(s) "
                f"({self.chunks_dropped} chunk(s)), compacted "
                f"{self.chunks_compacted} chunk(s), retired "
                f"{self.runs_dropped} run registry entr(y/ies)")
        if self.stranded_dropped:
            text += f", dropped {self.stranded_dropped} stranded chunk(s)"
        if not self.dry_run:
            text += (f"; {self.bytes_before} -> {self.bytes_after} bytes "
                     "on disk")
        return text


def gc_store(store: ResultStore, keep_runs: int | None = None,
             compact: bool = True, drop_stranded: bool = False,
             dry_run: bool = False, protected_keys=()) -> GCReport:
    """Compact and garbage-collect a SQLite result store.

    The invariant this function is built around: **no live lookup ever
    changes**.  A key is *live* when any retained run requires it (or it
    is in ``protected_keys``, or no retention policy applies); live keys
    keep their entire contiguous chunk prefix — :meth:`ResultStore.
    lookup` pools the whole prefix, so even chunks beyond a run's
    current ``num_packets`` are load-bearing.  What GC does instead:

    * With ``keep_runs=N``, keys required only by runs *older* than the
      ``N`` most recently registered are dropped entirely (the deletion
      unit is the key, never a chunk a live lookup could reach).
      ``keep_runs=None`` (default) keeps every key; an empty run
      registry also keeps every key (nothing to attribute them to).
    * With ``compact`` (default), each live key's contiguous prefix of
      two or more chunks is merged into a single pooled chunk at offset
      0 — counts are additive, so every ``lookup``/``pooled`` result is
      unchanged by construction.
    * With ``drop_stranded``, chunks *beyond a coverage gap* (written
      past a fault, unreachable by any lookup until the gap fills) are
      deleted too; off by default because a resuming driver can still
      use them.

    Ends with a WAL checkpoint and ``VACUUM``; ``dry_run`` computes the
    full report without writing anything.
    """
    if store.format != "sqlite":
        raise ValueError(
            "store gc requires the sqlite backend; convert the store "
            "first with: python -m repro store migrate <dir>")
    connection = store._connect(create=False)
    all_keys = set(store.keys())
    bytes_before = _database_bytes(store)

    retained_run_ids: set[int] = set()
    dropped_run_ids: set[int] = set()
    if keep_runs is not None and connection is not None:
        rows = [row[0] for row in connection.execute(
            "SELECT run_id FROM runs ORDER BY run_id DESC")]
        retained_run_ids = set(rows[:max(0, int(keep_runs))])
        dropped_run_ids = set(rows) - retained_run_ids

    if keep_runs is None or connection is None or not (
            retained_run_ids or dropped_run_ids):
        live = set(all_keys)
    else:
        live = set(protected_keys) & all_keys
        for run_id in retained_run_ids:
            live.update(row[0] for row in connection.execute(
                "SELECT key FROM requirements WHERE run_id = ?", (run_id,)))
        live &= all_keys
    dropped_keys = all_keys - live

    chunks_dropped = sum(len(store.stored_chunks(key))
                         for key in dropped_keys)
    chunks_compacted = 0
    stranded_dropped = 0
    compactions: list[tuple[str, BERPoint, int]] = []
    stranded: list[tuple[str, int]] = []
    for key in sorted(live):
        merged, covered = store._merge_prefix(key)
        chunks = store.stored_chunks(key)
        prefix = [c for c in chunks if c.packet_offset < covered]
        if compact and merged is not None and len(prefix) > 1:
            chunks_compacted += len(prefix)
            compactions.append((key, merged, covered))
        if drop_stranded:
            for chunk in chunks:
                if chunk.packet_offset >= covered:
                    stranded.append((key, chunk.packet_offset))
                    stranded_dropped += 1

    report = GCReport(
        dry_run=dry_run, keys_total=len(all_keys), keys_live=len(live),
        keys_dropped=len(dropped_keys), chunks_dropped=chunks_dropped,
        chunks_compacted=chunks_compacted,
        stranded_dropped=stranded_dropped,
        runs_dropped=len(dropped_run_ids),
        bytes_before=bytes_before, bytes_after=bytes_before)
    if dry_run or connection is None:
        return report

    store._begin_write(connection)
    try:
        for key in dropped_keys:
            connection.execute("DELETE FROM chunks WHERE key = ?", (key,))
            connection.execute("DELETE FROM points WHERE key = ?", (key,))
            connection.execute(
                "DELETE FROM requirements WHERE key = ?", (key,))
        for run_id in dropped_run_ids:
            connection.execute(
                "DELETE FROM requirements WHERE run_id = ?", (run_id,))
            connection.execute(
                "DELETE FROM runs WHERE run_id = ?", (run_id,))
        for key, merged, covered in compactions:
            connection.execute(
                "DELETE FROM chunks WHERE key = ? AND packet_offset < ?",
                (key, covered))
            connection.execute(
                "INSERT INTO chunks (key, packet_offset, packets_sent, "
                "ebn0_db, bit_errors, total_bits, packets_failed, writer) "
                "VALUES (?, 0, ?, ?, ?, ?, ?, 'gc')",
                (key, merged.packets_sent, float(merged.ebn0_db),
                 merged.bit_errors, merged.total_bits,
                 merged.packets_failed))
        for key, offset in stranded:
            connection.execute(
                "DELETE FROM chunks WHERE key = ? AND packet_offset = ?",
                (key, offset))
    except BaseException:
        connection.execute("ROLLBACK")
        raise
    connection.execute("COMMIT")
    connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    connection.execute("VACUUM")
    # VACUUM writes its fresh pages through the WAL; checkpoint again so
    # the measured on-disk size reflects the compacted database, not the
    # vacuum's own journal.
    connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    store.reload()
    return GCReport(
        dry_run=False, keys_total=report.keys_total,
        keys_live=report.keys_live, keys_dropped=report.keys_dropped,
        chunks_dropped=report.chunks_dropped,
        chunks_compacted=report.chunks_compacted,
        stranded_dropped=report.stranded_dropped,
        runs_dropped=report.runs_dropped,
        bytes_before=bytes_before, bytes_after=_database_bytes(store))


def _database_bytes(store: ResultStore) -> int:
    # Main database plus WAL sidecars: before a checkpoint most freshly
    # written bytes live in -wal, so the main file alone undercounts.
    path = getattr(store, "database_path", None)
    if path is None:
        return 0
    total = 0
    for candidate in (path, path.with_name(path.name + "-wal"),
                      path.with_name(path.name + "-shm")):
        if candidate.is_file():
            total += candidate.stat().st_size
    return total


# ----------------------------------------------------------------------
# Cross-run queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryResult:
    """Curves assembled from a warehouse by :func:`query_store`.

    ``entries`` pairs each matching point's metadata with its pooled
    measurement; :meth:`curves` groups them into labeled
    :class:`~repro.core.metrics.BERCurve` objects (the same
    ``scenario/modulation[/adcN]`` labels the sweep engine uses), so a
    query result plugs straight into
    :func:`repro.runs.artifacts.export_curves`.
    """

    entries: tuple[dict, ...] = field(default_factory=tuple)

    def curves(self) -> dict[str, BERCurve]:
        """The matching measurements grouped into labeled BER curves."""
        curves: dict[str, BERCurve] = {}
        for entry in sorted(self.entries,
                            key=lambda e: (e["label"], e["ebn0_db"])):
            curve = curves.setdefault(entry["label"],
                                      BERCurve(label=entry["label"]))
            curve.add(entry["measurement"])
        return curves

    def summary(self) -> str:
        """One line: how many points across how many curves matched."""
        return (f"{len(self.entries)} point(s) across "
                f"{len(self.curves())} curve(s)")


def _engine_label(scenario: str, modulation: str, adc_bits) -> str:
    label = f"{scenario}/{modulation}"
    if adc_bits is not None:
        label += f"/adc{int(adc_bits)}"
    return label


def query_store(store: ResultStore, scenarios=None, modulations=None,
                ebn0_min: float | None = None,
                ebn0_max: float | None = None,
                config_digest: str | None = None,
                min_packets: int | None = None) -> QueryResult:
    """Assemble curves across every run in a warehouse, by physics.

    Filters run over the indexed ``points`` metadata — ``scenarios`` and
    ``modulations`` are exact-match sets, ``ebn0_min``/``ebn0_max`` an
    inclusive dB range, ``config_digest`` a hex-digest *prefix* (so a
    truncated digest from a log line works) — and each surviving key
    contributes its pooled contiguous measurement
    (:meth:`ResultStore.pooled`).  ``min_packets`` drops points with
    less contiguous coverage than that.  Requires the SQLite backend
    (the JSONL format has no point metadata to filter on).
    """
    if store.format != "sqlite":
        raise ValueError(
            "query requires the sqlite backend; convert the store first "
            "with: python -m repro store migrate <dir>")
    connection = store._connect(create=False)
    if connection is None:
        return QueryResult()
    conditions = []
    parameters: list = []
    if scenarios:
        names = tuple(str(name) for name in scenarios)
        conditions.append(
            f"scenario IN ({', '.join('?' * len(names))})")
        parameters.extend(names)
    if modulations:
        names = tuple(str(name) for name in modulations)
        conditions.append(
            f"modulation IN ({', '.join('?' * len(names))})")
        parameters.extend(names)
    if ebn0_min is not None:
        conditions.append("ebn0_db >= ?")
        parameters.append(float(ebn0_min))
    if ebn0_max is not None:
        conditions.append("ebn0_db <= ?")
        parameters.append(float(ebn0_max))
    if config_digest:
        conditions.append("config_digest LIKE ?")
        parameters.append(str(config_digest) + "%")
    sql = ("SELECT key, scenario, modulation, adc_bits, ebn0_db, "
           "config_digest FROM points")
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    sql += " ORDER BY scenario, modulation, adc_bits, ebn0_db"
    entries = []
    for row in connection.execute(sql, parameters):
        key, scenario, modulation, adc_bits, ebn0_db, digest = row
        measurement = store.pooled(key)
        if measurement is None:
            continue
        if min_packets is not None \
                and measurement.packets_sent < int(min_packets):
            continue
        entries.append({
            "key": key, "scenario": scenario, "modulation": modulation,
            "adc_bits": adc_bits, "ebn0_db": ebn0_db,
            "config_digest": digest,
            "label": _engine_label(scenario, modulation, adc_bits),
            "measurement": measurement})
    return QueryResult(entries=tuple(entries))


# ----------------------------------------------------------------------
# Escalation-consistency validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValidationFinding:
    """One chunk statistically inconsistent with its key's other chunks."""

    key: str
    packet_offset: int
    num_packets: int
    chunk_errors: int
    chunk_bits: int
    rest_errors: int
    rest_bits: int
    p_value: float

    def describe(self) -> str:
        """One line naming the suspect chunk and the evidence against it."""
        chunk_ber = self.chunk_errors / self.chunk_bits
        rest_ber = self.rest_errors / self.rest_bits
        return (f"key {self.key[:12]}... chunk@{self.packet_offset} "
                f"({self.num_packets} pkt): BER {chunk_ber:.3e} vs "
                f"{rest_ber:.3e} elsewhere (p={self.p_value:.2e})")


def validate_store(store: ResultStore,
                   p_threshold: float = 1e-6) \
        -> tuple[ValidationFinding, ...]:
    """Flag chunks whose error counts disagree with their siblings.

    Every chunk of a key measures the *same* operating point with
    independent packets, so each chunk's bit-error proportion and the
    pooled proportion of its sibling chunks estimate one underlying BER.
    A two-proportion z-test per chunk (p-value via the normal
    approximation, ``erfc``) flags escalations that are statistically
    impossible together — the signature of a stale cache entry, a
    seed-derivation bug, or a corrupted merge.  ``p_threshold`` is
    deliberately tiny (default ``1e-6``): with many chunks tested, only
    wildly inconsistent counts should surface.  Works on either backend
    (it only reads chunks).
    """
    findings = []
    for key in store.keys():
        chunks = store.stored_chunks(key)
        if len(chunks) < 2:
            continue
        total_errors = sum(c.measurement.bit_errors for c in chunks)
        total_bits = sum(c.measurement.total_bits for c in chunks)
        for chunk in chunks:
            chunk_errors = chunk.measurement.bit_errors
            chunk_bits = chunk.measurement.total_bits
            rest_errors = total_errors - chunk_errors
            rest_bits = total_bits - chunk_bits
            if chunk_bits == 0 or rest_bits == 0:
                continue
            pooled = total_errors / total_bits
            if pooled in (0.0, 1.0):
                continue  # identical degenerate proportions: consistent
            variance = pooled * (1.0 - pooled) \
                * (1.0 / chunk_bits + 1.0 / rest_bits)
            z = (chunk_errors / chunk_bits - rest_errors / rest_bits) \
                / math.sqrt(variance)
            p_value = math.erfc(abs(z) / math.sqrt(2.0))
            if p_value < p_threshold:
                findings.append(ValidationFinding(
                    key=key, packet_offset=chunk.packet_offset,
                    num_packets=chunk.num_packets,
                    chunk_errors=chunk_errors, chunk_bits=chunk_bits,
                    rest_errors=rest_errors, rest_bits=rest_bits,
                    p_value=p_value))
    return tuple(findings)
