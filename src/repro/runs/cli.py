"""``python -m repro`` — run sweeps against the content-addressed store.

Subcommands:

``sweep``
    Create (or re-open) a run directory and execute one shard of the
    grid.  Re-invoking with identical arguments performs zero simulation
    work: every point is served from the store.

    .. code-block:: shell

        python -m repro sweep --scenario cm1 --mod bpsk --ebn0 0:12:1 \\
            --packets 20000 --shard 0/4 --out runs/

``resume``
    Execute every shard of an existing run that has no completion marker
    (after a crash, or to finish shards locally that were planned for
    other machines).

``merge``
    Merge all shard outputs into one curve set, print it and export it as
    a named CSV/JSON artifact under ``<run>/artifacts/``.

``show``
    Print a run's manifest summary, per-shard chunk/cache status and
    coverage.

``report``
    Render a run's telemetry ledger (``events.jsonl``, recorded with
    ``--telemetry``): per-span timing, a chunk latency histogram,
    per-scenario throughput, the slowest chunks.

``store migrate`` / ``store gc``
    Warehouse maintenance: convert a JSONL store (or whole run
    directory) to the SQLite warehouse format with verified
    bit-identical lookups (``migrate``, with ``--dry-run`` diffing),
    and compact / garbage-collect a warehouse under a ``--keep-runs N``
    retention policy (``gc``) — see :mod:`repro.runs.warehouse`.

``query``
    Assemble BER curves across *all* runs in a warehouse by scenario,
    modulation, Eb/N0 range or config-digest prefix; optionally
    validate escalation consistency (``--validate``) and export the
    result as a named artifact (``--export``).

    .. code-block:: shell

        python -m repro query runs/cm1 --scenario cm1 --ebn0-min 4 \\
            --export cm1-curves

``serve`` / ``worker`` / ``submit``
    The sweep service (:mod:`repro.serve`): ``serve`` runs the broker —
    grids in over HTTP, seeded packet-chunk leases out to pull workers,
    results into one shared content-addressed store; ``worker`` runs a
    puller against a broker; ``submit`` sends a grid (same axes as
    ``sweep``) and with ``--wait`` streams the curve as chunks land.

    .. code-block:: shell

        python -m repro serve --store runs/shared &
        python -m repro worker --broker http://127.0.0.1:8765 &
        python -m repro submit --broker http://127.0.0.1:8765 \\
            --ebn0 0:8:2 --packets 64 --wait

Grid axes accept comma-separated lists (``--scenario awgn,cm1``); the
Eb/N0 axis also accepts ``start:stop[:step]`` with an *inclusive* stop
and a default step of 1 (``--ebn0 0:12:1`` is the thirteen integer
points 0..12 dB).  ``--array-backend`` (or ``REPRO_ARRAY_BACKEND``)
selects the array backend the batch kernel runs on; ``--workers N``
fans cache misses over worker processes with shared-memory chunk
transport, and ``--chunk-packets N`` makes the seeded packet chunk the
unit of scheduling and caching so even a single hot point spreads over
the pool.  ``--progress`` draws a live one-line status on stderr and
``--telemetry`` records the run's event ledger (both off by default;
neither changes results — telemetry is bitwise invisible).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.obs.ledger import LEDGER_NAME, SUMMARY_NAME
from repro.obs.progress import ProgressLine
from repro.obs.recorder import Recorder
from repro.obs.report import load_run_events, render_report
from repro.runs.artifacts import export_curves
from repro.runs.driver import RunDriver, RunManifest
from repro.runs.store import STORE_FORMATS, ResultStore
from repro.runs.warehouse import (gc_store, migrate_run, migrate_store,
                                  query_store, validate_store)
from repro.sim.engine import SweepEngine, sweep_grid

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# Argument parsing helpers
# ----------------------------------------------------------------------
def parse_ebn0_axis(text: str) -> tuple[float, ...]:
    """``"0:12:1"`` (inclusive stop) or ``"0,4,8"`` -> Eb/N0 values in dB."""
    text = text.strip()
    try:
        if ":" in text:
            parts = text.split(":")
            if len(parts) == 2:
                parts.append("1")
            if len(parts) != 3:
                raise ValueError("expected start:stop[:step]")
            start, stop, step = (float(part) for part in parts)
            if not np.isfinite([start, stop, step]).all():
                raise ValueError("values must be finite")
            if step <= 0:
                raise ValueError("step must be positive")
            if stop < start:
                raise ValueError("stop must be >= start")
            count = int(np.floor((stop - start) / step + 1e-9)) + 1
            return tuple(float(start + index * step)
                         for index in range(count))
        values = tuple(float(part) for part in text.split(",")
                       if part.strip())
        if not np.isfinite(values).all():
            raise ValueError("values must be finite")
        return values
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"bad Eb/N0 axis {text!r}: {error} (use start:stop:step with "
            "an inclusive stop, or a comma-separated list)") from None


def parse_name_axis(text: str) -> tuple[str, ...]:
    values = tuple(part.strip() for part in text.split(",") if part.strip())
    if not values:
        raise argparse.ArgumentTypeError(f"empty axis {text!r}")
    return values


def parse_adc_bits_axis(text: str) -> tuple[int | None, ...]:
    """``"none"`` (config default), ``"1,4"``, or a mix of both."""
    values: list[int | None] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part.lower() in ("none", "default"):
            values.append(None)
            continue
        try:
            values.append(int(part))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad adc-bits axis value {part!r} (integer or 'none')") \
                from None
    if not values:
        raise argparse.ArgumentTypeError(f"empty adc-bits axis {text!r}")
    return tuple(values)


def parse_shard_spec(text: str) -> tuple[int, int]:
    """``"i/k"`` -> (shard index, shard count), validated."""
    try:
        index_text, _, total_text = text.partition("/")
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad shard spec {text!r} (expected i/k, e.g. 0/4)") from None
    if total < 1 or not 0 <= index < total:
        raise argparse.ArgumentTypeError(
            f"bad shard spec {text!r}: need 0 <= i < k")
    return index, total


def _add_grid_arguments(command: argparse.ArgumentParser) -> None:
    """Attach the shared grid/engine axes (used by sweep and submit)."""
    command.add_argument("--ebn0", type=parse_ebn0_axis, required=True,
                         metavar="START:STOP[:STEP]|DB[,DB...]",
                         help="Eb/N0 axis in dB: START:STOP[:STEP] with an "
                              "inclusive stop and a default step of 1 "
                              "(e.g. 0:12:1 is the thirteen points 0..12), "
                              "or a comma-separated list (e.g. 0,4,8.5)")
    command.add_argument("--scenario", type=parse_name_axis,
                         default=("awgn",), metavar="NAME[,NAME...]",
                         help="channel scenario axis, comma-separated "
                              "registry names (default: awgn; see "
                              "repro.sim.SCENARIOS, e.g. awgn,two_ray,cm1)")
    command.add_argument("--mod", type=parse_name_axis, default=("bpsk",),
                         metavar="NAME[,NAME...]",
                         help="modulation axis, comma-separated (default: "
                              "bpsk; also ook, ppm, pam4)")
    command.add_argument("--adc-bits", type=parse_adc_bits_axis,
                         default=(None,), metavar="BITS[,BITS...]",
                         help="ADC resolution axis, comma-separated "
                              "integers; 'none' (or 'default') keeps the "
                              "config default and may be mixed in "
                              "(e.g. none,1,4)")
    command.add_argument("--packets", type=int, default=32, metavar="N",
                         help="packets per grid point (default: 32); "
                              "raising it on an existing run simulates "
                              "only the missing tail chunk per point")
    command.add_argument("--payload-bits", type=int, default=64,
                         metavar="N",
                         help="payload bits per packet (default: 64)")
    command.add_argument("--chunk-packets", type=int, default=None,
                         metavar="N",
                         help="split every point's packet budget into "
                              "seeded chunks of N packets — the "
                              "schedulable, cacheable unit of work, "
                              "recorded in the manifest; with --workers, "
                              "the chunks of all points (hot single points "
                              "included) fan out over the pool (default: "
                              "one chunk per point, the historical layout)")
    command.add_argument("--seed", type=int, default=0, metavar="N",
                         help="engine root seed (default: 0)")
    command.add_argument("--generation", choices=("gen1", "gen2"),
                         default="gen2",
                         help="transceiver generation (default: gen2)")
    command.add_argument("--backend",
                         choices=("batch", "fullstack", "packet"),
                         default="batch",
                         help="simulation backend: 'batch' is the "
                              "vectorized genie-timed kernel, 'fullstack' "
                              "the batched full receiver chain (real "
                              "acquisition/channel estimation/RAKE, bit-"
                              "decision-identical to 'packet'; batches end "
                              "to end for both generations, including the "
                              "gen-1 interleaved-flash front end), "
                              "'packet' the per-packet reference stack "
                              "(default: batch)")
    command.add_argument("--array-backend",
                         choices=("numpy", "cupy", "jax"), default=None,
                         help="array backend the batch kernel runs on "
                              "(default: the REPRO_ARRAY_BACKEND "
                              "environment variable, else numpy); an "
                              "explicitly named accelerator must be "
                              "importable")
    command.add_argument("--no-quantize", action="store_true",
                         help="batch backend: skip AGC + ADC quantization")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (sweep/resume/merge/show)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cached, sharded Monte-Carlo sweeps over the UWB link "
                    "simulator.")
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep", help="execute one shard of a (possibly new) sweep run",
        epilog="examples: --ebn0 0:12:1 (0..12 dB in 1 dB steps, stop "
               "inclusive); --ebn0 0:12 (step defaults to 1); "
               "--ebn0 0,4,8.5 (explicit list); --scenario awgn,cm1 "
               "--mod bpsk,ook --adc-bits none,1,4 sweeps the full "
               "cartesian grid; --shard 1/4 runs the second of four "
               "round-robin shards.")
    _add_grid_arguments(sweep)
    sweep.add_argument("--shard", type=parse_shard_spec, default=(0, 1),
                       metavar="I/K",
                       help="execute shard I of K (0 <= I < K, default "
                            "0/1); shard I owns manifest points I, I+K, "
                            "I+2K, ... and any machine seeing the run "
                            "directory may execute it")
    sweep.add_argument("--out", default="runs", metavar="DIR",
                       help="directory holding run directories "
                            "(default: runs)")
    sweep.add_argument("--name", default=None, metavar="NAME",
                       help="run name (default: derived from the grid "
                            "digest)")
    sweep.add_argument("--store-format", choices=STORE_FORMATS,
                       default=None,
                       help="result-store backend for a new run: 'jsonl' "
                            "(append-only files, the historical default) "
                            "or 'sqlite' (the queryable warehouse; see "
                            "python -m repro query).  Default: whatever "
                            "the store already holds, else "
                            "REPRO_STORE_FORMAT, else jsonl.  An existing "
                            "run keeps its format (convert with "
                            "python -m repro store migrate)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="simulate cache misses on N worker processes "
                            "(results return through shared memory, "
                            "bit-identical to serial; default: serial)")
    _add_obs_arguments(sweep)

    resume = commands.add_parser(
        "resume", help="finish every incomplete shard of an existing run")
    resume.add_argument("--run", required=True, metavar="DIR",
                        help="run directory (as printed by sweep)")
    resume.add_argument("--workers", type=int, default=None, metavar="N",
                        help="simulate cache misses on N worker processes "
                             "(shared-memory transport; default: serial)")
    _add_obs_arguments(resume)

    merge = commands.add_parser(
        "merge", help="merge shard outputs and export a curve artifact")
    merge.add_argument("--run", required=True, metavar="DIR",
                       help="run directory (as printed by sweep)")
    merge.add_argument("--name", default=None, metavar="NAME",
                       help="artifact name (default: the run name)")
    merge.add_argument("--allow-partial", action="store_true",
                       help="merge whatever is measured so far instead of "
                            "failing on unmeasured points")

    show = commands.add_parser(
        "show", help="print a run's manifest, shard status and coverage")
    show.add_argument("--run", required=True, metavar="DIR",
                      help="run directory (as printed by sweep)")

    report = commands.add_parser(
        "report", help="render a run's telemetry ledger (needs a sweep "
                       "or resume recorded with --telemetry)")
    report.add_argument("run", metavar="DIR",
                        help="run directory holding events.jsonl")
    report.add_argument("--top", type=int, default=5, metavar="K",
                        help="how many slowest chunks to list (default: 5)")

    store = commands.add_parser(
        "store", help="warehouse maintenance: migrate a JSONL store to "
                      "SQLite, compact/garbage-collect a warehouse")
    actions = store.add_subparsers(dest="store_command", required=True)

    migrate = actions.add_parser(
        "migrate", help="convert a JSONL store (or run directory) to the "
                        "SQLite warehouse format, verified bit-identical")
    migrate.add_argument("dir", metavar="DIR",
                         help="a store directory, or a run directory "
                              "(its manifest is updated too)")
    migrate.add_argument("--dry-run", action="store_true",
                         help="report what would be copied without "
                              "writing anything")
    migrate.add_argument("--remove-jsonl", action="store_true",
                         help="delete the JSONL source files after the "
                              "migration verifies (default: keep them)")

    gc = actions.add_parser(
        "gc", help="compact a warehouse and apply a retention policy "
                   "(never changes any live lookup result)")
    gc.add_argument("dir", metavar="DIR",
                    help="a store directory, or a run directory")
    gc.add_argument("--keep-runs", type=int, default=None, metavar="N",
                    help="drop keys required only by runs older than the "
                         "N most recently registered (default: keep "
                         "every key)")
    gc.add_argument("--no-compact", action="store_true",
                    help="skip merging each key's contiguous chunks into "
                         "one pooled row")
    gc.add_argument("--drop-stranded", action="store_true",
                    help="also delete chunks stranded beyond a coverage "
                         "gap (unreachable by lookups, but usable by a "
                         "resuming driver)")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would happen without writing "
                         "anything")

    query = commands.add_parser(
        "query", help="assemble curves across all runs in a warehouse "
                      "by scenario/modulation/Eb-N0/config")
    query.add_argument("dir", metavar="DIR",
                       help="a store directory, or a run directory")
    query.add_argument("--scenario", type=parse_name_axis, default=None,
                       metavar="NAME[,NAME...]",
                       help="only these channel scenarios")
    query.add_argument("--mod", type=parse_name_axis, default=None,
                       metavar="NAME[,NAME...]",
                       help="only these modulations")
    query.add_argument("--ebn0-min", type=float, default=None,
                       metavar="DB", help="inclusive lower Eb/N0 bound")
    query.add_argument("--ebn0-max", type=float, default=None,
                       metavar="DB", help="inclusive upper Eb/N0 bound")
    query.add_argument("--config", default=None, metavar="PREFIX",
                       help="only points whose config digest starts with "
                            "this hex prefix")
    query.add_argument("--min-packets", type=int, default=None,
                       metavar="N",
                       help="only points with at least N contiguously "
                            "covered packets")
    query.add_argument("--validate", action="store_true",
                       help="also run the escalation-consistency check "
                            "and list statistically inconsistent chunks")
    query.add_argument("--export", default=None, metavar="NAME",
                       help="export the assembled curves as a named "
                            "CSV/JSON artifact")
    query.add_argument("--export-dir", default=None, metavar="DIR",
                       help="directory for --export (default: "
                            "<run>/artifacts next to a run directory, "
                            "else the store directory)")

    serve = commands.add_parser(
        "serve", help="run the sweep broker: lease chunks of submitted "
                      "grids to pull workers over HTTP")
    serve.add_argument("--store", required=True, metavar="DIR",
                       help="shared content-addressed result store "
                            "directory every job caches into")
    serve.add_argument("--store-format", choices=STORE_FORMATS,
                       default=None,
                       help="store backend for a fresh directory "
                            "(default: detect, then REPRO_STORE_FORMAT, "
                            "then jsonl)")
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765, metavar="N",
                       help="bind port; 0 picks a free one (default: 8765)")
    serve.add_argument("--lease-timeout", type=float, default=30.0,
                       metavar="S",
                       help="seconds a chunk lease survives without a "
                            "heartbeat before it is re-queued "
                            "(default: 30)")
    serve.add_argument("--max-attempts", type=int, default=5, metavar="N",
                       help="lease grants per chunk before it and its "
                            "jobs are failed (default: 5)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="directory for durable broker state: "
                            "submissions, grants, attempt counts and "
                            "failures are journaled to an append-only "
                            "fsynced journal.jsonl there, and a "
                            "restarted broker replays it against the "
                            "store — queued jobs survive crashes and "
                            "committed chunks are never re-simulated "
                            "(default: in-memory queue only)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")

    worker = commands.add_parser(
        "worker", help="run a pull worker against a sweep broker")
    worker.add_argument("--broker", required=True, metavar="URL",
                        help="broker base URL (as printed by serve, e.g. "
                             "http://127.0.0.1:8765)")
    worker.add_argument("--name", default=None, metavar="NAME",
                        help="worker name reported at registration "
                             "(default: broker-assigned id)")
    worker.add_argument("--poll-interval", type=float, default=0.2,
                        metavar="S",
                        help="seconds between lease polls while idle "
                             "(default: 0.2)")
    worker.add_argument("--exit-when-idle", action="store_true",
                        help="stop once the broker has no pending or "
                             "leased chunks (instead of idling)")
    worker.add_argument("--max-chunks", type=int, default=None,
                        metavar="N",
                        help="stop after committing N chunks "
                             "(default: unlimited)")
    worker.add_argument("--retry-attempts", type=int, default=5,
                        metavar="N",
                        help="tries per request against transient "
                             "transport errors (broker restarting, "
                             "connection reset) before failing loudly; "
                             "backoff is exponential with seeded "
                             "jitter (default: 5)")
    worker.add_argument("--retry-seed", type=int, default=0, metavar="N",
                        help="seed for the retry jitter stream; give "
                             "each worker its own to desynchronize a "
                             "reconnect stampede (default: 0)")

    submit = commands.add_parser(
        "submit", help="submit a sweep grid to a broker over HTTP",
        epilog="the grid axes are identical to sweep's; the broker "
               "decomposes the grid into seeded packet chunks and "
               "workers execute them — the merged curve is bit-identical "
               "to a local sweep of the same grid.")
    submit.add_argument("--broker", required=True, metavar="URL",
                        help="broker base URL (as printed by serve)")
    _add_grid_arguments(submit)
    submit.add_argument("--name", default=None, metavar="NAME",
                        help="job name shown in broker status")
    submit.add_argument("--wait", action="store_true",
                        help="long-poll until the job completes, "
                             "printing the curve as chunks land")
    submit.add_argument("--export", default=None, metavar="NAME",
                        help="with --wait: export the final curves as a "
                             "named CSV/JSON artifact")
    submit.add_argument("--export-dir", default="artifacts", metavar="DIR",
                        help="directory for --export "
                             "(default: artifacts)")
    return parser


def _add_obs_arguments(command: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to sweep/resume."""
    command.add_argument("--progress", action="store_true",
                         help="draw a live one-line chunk/point/throughput "
                              "status on stderr while the shard runs")
    command.add_argument("--telemetry", action="store_true",
                         help="record spans and counters into the run's "
                              "events.jsonl + telemetry.json; results are "
                              "bitwise identical with or without it "
                              "(render with: python -m repro report)")


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------
def _print_curves(result, out) -> None:
    print(f"{'curve':<24} {'Eb/N0 [dB]':>10} {'BER':>12} {'PER':>8}",
          file=out)
    curves = result.curves()
    for label in sorted(curves):
        for point in curves[label].points:
            print(f"{label:<24} {point.ebn0_db:>10.2f} {point.ber:>12.3e} "
                  f"{point.per:>8.3f}", file=out)


def _engine_from_args(args) -> SweepEngine:
    """Build the sweep engine a ``sweep`` invocation describes."""
    recorder = Recorder() if args.telemetry else None
    return SweepEngine(generation=args.generation, seed=args.seed,
                       backend=args.backend, quantize=not args.no_quantize,
                       array_backend=args.array_backend,
                       chunk_packets=args.chunk_packets,
                       recorder=recorder)


def _progress_for(args, points_total: int) -> ProgressLine | None:
    """A live progress line when ``--progress`` was given, else ``None``."""
    if not args.progress:
        return None
    return ProgressLine(points_total=points_total)


def _run_shard_with_progress(driver, shard_index, args) -> "RunReport":
    """Execute one shard, driving the optional ``--progress`` line."""
    progress = _progress_for(
        args, len(driver.manifest.points_for_shard(shard_index)))
    if progress is None:
        return driver.run_shard(shard_index, max_workers=args.workers)
    try:
        return driver.run_shard(
            shard_index, max_workers=args.workers,
            on_plan=progress.plan, on_chunk=progress.chunk,
            on_point=progress.point)
    finally:
        progress.close()


def _print_telemetry_notice(args, run_dir, out) -> None:
    if args.telemetry:
        print(f"telemetry: {LEDGER_NAME} + {SUMMARY_NAME} written; render "
              f"with: python -m repro report {run_dir}", file=out)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _command_sweep(args, out) -> int:
    from pathlib import Path
    engine = _engine_from_args(args)
    points = sweep_grid(args.ebn0, scenarios=args.scenario,
                        modulations=args.mod, adc_bits=args.adc_bits)
    shard_index, num_shards = args.shard
    name = args.name
    if name is None:
        naming = RunManifest(
            name="unnamed", seed=engine.seed, generation=engine.generation,
            backend=engine.backend, quantize=engine.quantize,
            custom_config=False, config_digest=engine.config_digest(),
            num_packets=args.packets,
            payload_bits_per_packet=args.payload_bits,
            num_shards=num_shards, code_version="", points=points)
        name = "sweep-" + naming.grid_digest()[:12]
    run_dir = Path(args.out) / name
    driver = RunDriver.create(run_dir, engine, points,
                              num_packets=args.packets,
                              payload_bits_per_packet=args.payload_bits,
                              num_shards=num_shards, name=name,
                              store_format=args.store_format)
    manifest = driver.manifest
    print(f"run: {run_dir} (grid {manifest.grid_digest()[:12]}, "
          f"seed {manifest.seed}, {len(manifest.points)} point(s), "
          f"{manifest.num_packets} packets/point)", file=out)
    report = _run_shard_with_progress(driver, shard_index, args)
    print(report.summary(), file=out)
    _print_telemetry_notice(args, run_dir, out)
    if driver.is_complete:
        print(f"run complete: all {manifest.num_shards} shard(s) done; "
              f"merge with: python -m repro merge --run {run_dir}",
              file=out)
    else:
        pending = ", ".join(str(index) for index in driver.pending_shards())
        print(f"pending shard(s): {pending} (execute them with --shard, or "
              f"python -m repro resume --run {run_dir})", file=out)
    return 0


def _command_resume(args, out) -> int:
    driver = RunDriver.open(args.run)
    if args.telemetry:
        # The engine is rebuilt from the manifest, so attach the recorder
        # after the fact (it is excluded from the config digest).
        driver.engine.recorder = Recorder()
    pending = driver.pending_shards()
    if not pending:
        print(f"run {args.run}: nothing to resume, all "
              f"{driver.manifest.num_shards} shard(s) done", file=out)
        return 0
    for shard_index in pending:
        report = _run_shard_with_progress(driver, shard_index, args)
        print(report.summary(), file=out)
    _print_telemetry_notice(args, driver.run_dir, out)
    print(f"run complete: all {driver.manifest.num_shards} shard(s) done",
          file=out)
    return 0


def _command_merge(args, out) -> int:
    driver = RunDriver.open(args.run)
    result = driver.merge(strict=not args.allow_partial)
    manifest = driver.manifest
    name = args.name if args.name is not None else manifest.name
    artifact = export_curves(result, driver.artifacts_dir, name, metadata={
        "run": manifest.name,
        "seed": manifest.seed,
        "grid_digest": manifest.grid_digest(),
        "config_digest": manifest.config_digest,
        "num_packets": manifest.num_packets,
        "payload_bits_per_packet": manifest.payload_bits_per_packet,
        "num_shards": manifest.num_shards,
        "code_version": manifest.code_version,
    })
    print(f"merged {len(result.entries)} of {len(manifest.points)} "
          f"point(s) into {artifact.json_path} (+ .csv)", file=out)
    _print_curves(result, out)
    return 0


def _command_show(args, out) -> int:
    driver = RunDriver.open(args.run)
    manifest = driver.manifest
    store = driver.open_store()
    measured = sum(
        1 for point in manifest.points
        if store.lookup(driver._key_for(point), manifest.num_packets)
        is not None)
    print(f"run       : {manifest.name}", file=out)
    print(f"grid      : {len(manifest.points)} point(s), digest "
          f"{manifest.grid_digest()[:12]}", file=out)
    print(f"engine    : {manifest.generation}/{manifest.backend} seed "
          f"{manifest.seed} quantize={manifest.quantize}", file=out)
    print(f"budget    : {manifest.num_packets} packets/point x "
          f"{manifest.payload_bits_per_packet} payload bits", file=out)
    if manifest.chunk_packets is not None:
        print(f"chunking  : {manifest.chunk_packets} packets/chunk",
              file=out)
    print(f"code      : {manifest.code_version}", file=out)
    print(f"coverage  : {measured}/{len(manifest.points)} point(s) measured",
          file=out)
    if store.corrupt_records:
        print(f"warning   : {store.corrupt_records} corrupt store "
              "record(s) skipped", file=out)
    progress = driver.shard_progress()
    total_chunks = sum(entry["chunks_stored"] for entry in progress.values())
    total_packets = sum(entry["packets_stored"]
                        for entry in progress.values())
    print(f"store     : {total_chunks} chunk(s) holding {total_packets} "
          f"packet(s) [{manifest.store_format}]", file=out)
    for shard_index, entry in sorted(progress.items()):
        print(f"shard {shard_index:>3} : {entry['status']} "
              f"({entry['points_measured']}/{entry['points_total']} "
              f"point(s), {entry['chunks_stored']} chunk(s), "
              f"{entry['packets_stored']} packet(s))", file=out)
    if (driver.run_dir / LEDGER_NAME).is_file():
        print(f"telemetry : {LEDGER_NAME} present; render with: "
              f"python -m repro report {driver.run_dir}", file=out)
    if measured:
        _print_curves(driver.merge(strict=False), out)
    return 0


def _command_report(args, out) -> int:
    events, corrupt = load_run_events(args.run)
    if corrupt:
        print(f"warning: {corrupt} corrupt ledger line(s) skipped",
              file=sys.stderr)
    print(render_report(events, top_k=args.top), file=out)
    return 0


def _resolve_store_dir(path):
    """``DIR`` may be a run directory or a bare store directory.

    Returns ``(store_dir, run_dir_or_None)``: a directory holding a
    ``manifest.json`` is a run directory whose store lives in
    ``store/``; anything else is treated as the store itself.
    """
    from pathlib import Path
    path = Path(path)
    if (path / "manifest.json").is_file():
        return path / "store", path
    return path, None


def _command_store(args, out) -> int:
    if args.store_command == "migrate":
        store_dir, run_dir = _resolve_store_dir(args.dir)
        if run_dir is not None:
            report = migrate_run(run_dir, dry_run=args.dry_run,
                                 remove_jsonl=args.remove_jsonl)
        else:
            report = migrate_store(store_dir, dry_run=args.dry_run,
                                   remove_jsonl=args.remove_jsonl)
        print(report.summary(), file=out)
        return 0
    # gc
    store_dir, run_dir = _resolve_store_dir(args.dir)
    store = ResultStore.open(store_dir)
    try:
        protected = []
        if run_dir is not None:
            manifest = RunManifest.load(run_dir)
            if not manifest.custom_config:
                driver = RunDriver.open(run_dir)
                protected = [driver._key_for(point)
                             for point in manifest.points]
        report = gc_store(store, keep_runs=args.keep_runs,
                          compact=not args.no_compact,
                          drop_stranded=args.drop_stranded,
                          dry_run=args.dry_run, protected_keys=protected)
    finally:
        store.close()
    print(report.summary(), file=out)
    return 0


def _command_query(args, out) -> int:
    store_dir, run_dir = _resolve_store_dir(args.dir)
    store = ResultStore.open(store_dir)
    try:
        result = query_store(store, scenarios=args.scenario,
                             modulations=args.mod,
                             ebn0_min=args.ebn0_min,
                             ebn0_max=args.ebn0_max,
                             config_digest=args.config,
                             min_packets=args.min_packets)
        print(f"query matched {result.summary()}", file=out)
        if result.entries:
            _print_curves(result, out)
        if args.validate:
            findings = validate_store(store)
            if findings:
                print(f"validation: {len(findings)} statistically "
                      "inconsistent chunk(s)", file=out)
                for finding in findings:
                    print(f"  {finding.describe()}", file=out)
            else:
                print("validation: all escalations consistent", file=out)
        if args.export is not None:
            if args.export_dir is not None:
                export_dir = args.export_dir
            elif run_dir is not None:
                export_dir = run_dir / "artifacts"
            else:
                export_dir = store_dir
            artifact = export_curves(result, export_dir, args.export,
                                     metadata={
                                         "source": "query",
                                         "store": str(store_dir),
                                         "points": len(result.entries),
                                     })
            print(f"exported {artifact.json_path} (+ .csv)", file=out)
    finally:
        store.close()
    return 0


def _command_serve(args, out) -> int:
    import signal
    import threading
    from repro.serve.api import create_server
    from repro.serve.broker import Broker
    broker = Broker(args.store, store_format=args.store_format,
                    lease_timeout_s=args.lease_timeout,
                    max_attempts=args.max_attempts,
                    state_dir=args.state_dir)
    server = create_server(broker, host=args.host, port=args.port,
                           verbose=args.verbose)
    state = (f", state: {args.state_dir} [durable]"
             if args.state_dir is not None else "")
    print(f"serving on {server.url} (store: {args.store} "
          f"[{broker.store.format}], lease timeout "
          f"{args.lease_timeout:g}s{state})", file=out, flush=True)
    totals = broker.recorder.counter_totals()
    if totals.get("serve.jobs_recovered") \
            or totals.get("serve.tasks_requeued"):
        print(f"recovered {totals.get('serve.jobs_recovered', 0)} job(s) "
              f"from the journal, requeued "
              f"{totals.get('serve.tasks_requeued', 0)} leased task(s)",
              file=out, flush=True)
    # Graceful shutdown: the signal handler only flips flags (the broker
    # stops granting leases and the journal is already fsynced per
    # append); the main thread then tears the server down and exits 0.
    stop = threading.Event()

    def _graceful(signum, frame):
        broker.begin_shutdown()
        stop.set()

    previous = {signum: signal.signal(signum, _graceful)
                for signum in (signal.SIGTERM, signal.SIGINT)}
    thread = server.serve_in_thread()
    try:
        stop.wait()
        print("shutdown: draining — no new submissions or leases; "
              "journal is flushed (restart with the same --state-dir "
              "to resume queued jobs)", file=out, flush=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        broker.close()
    return 0


def _command_worker(args, out) -> int:
    import signal
    from repro.serve.worker import BrokerClient, Worker, WorkerShutdown
    client = BrokerClient(args.broker, max_attempts=args.retry_attempts,
                          retry_seed=args.retry_seed)
    worker = Worker(client, name=args.name,
                    poll_interval_s=args.poll_interval,
                    exit_when_idle=args.exit_when_idle)

    def _graceful(signum, frame):
        # Raised into the worker loop: the in-flight lease is released
        # (requeued immediately, grant un-counted), not abandoned.
        worker.request_stop()
        raise WorkerShutdown(signal.Signals(signum).name)

    from repro.serve.worker import BrokerTransportError
    previous = {signum: signal.signal(signum, _graceful)
                for signum in (signal.SIGTERM, signal.SIGINT)}
    try:
        tally = worker.run(max_chunks=args.max_chunks)
    except BrokerTransportError as error:
        print(f"error: {error} (worker {worker.worker_id or 'unregistered'}"
              f" giving up; raise --retry-attempts to outlast longer "
              "broker restarts)", file=sys.stderr)
        return 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    stopped = " (stopped by signal, lease released)" \
        if tally.get("stopped") else ""
    print(f"worker {tally['worker_id']}: "
          f"{tally['chunks_committed']} chunk(s) committed, "
          f"{tally['chunks_abandoned']} abandoned, "
          f"{tally['chunks_failed']} failed{stopped}", file=out)
    return 0


def _command_submit(args, out) -> int:
    from repro.serve.broker import result_from_curve_payload
    from repro.serve.worker import BrokerClient
    client = BrokerClient(args.broker)
    points = sweep_grid(args.ebn0, scenarios=args.scenario,
                        modulations=args.mod, adc_bits=args.adc_bits)
    spec = {
        "points": [{"ebn0_db": point.ebn0_db, "scenario": point.scenario,
                    "modulation": point.modulation,
                    "adc_bits": point.adc_bits} for point in points],
        "num_packets": args.packets,
        "payload_bits_per_packet": args.payload_bits,
        "chunk_packets": args.chunk_packets,
        "seed": args.seed,
        "generation": args.generation,
        "backend": args.backend,
        "quantize": not args.no_quantize,
        "array_backend": args.array_backend,
        "name": args.name,
    }
    job = client.submit(spec)
    print(f"job {job['job_id']}: {job['points_total']} point(s), "
          f"{job['chunks_total']} chunk(s) "
          f"({job['points_cached_at_submit']} point(s) already cached, "
          f"{job['chunks_shared']} chunk(s) shared with other jobs)",
          file=out, flush=True)
    if not args.wait:
        print(f"poll with: GET {args.broker}/api/v1/jobs/{job['job_id']}"
              "/curve", file=out)
        return 0
    payload = client.wait_for_curve(job["job_id"])
    print(f"job {job['job_id']} {payload['state']}: "
          f"{payload['points_measured']}/{payload['points_total']} "
          "point(s) measured", file=out)
    result = result_from_curve_payload(payload)
    _print_curves(result, out)
    if args.export is not None:
        artifact = export_curves(result, args.export_dir, args.export,
                                 metadata={
                                     "source": "serve",
                                     "broker": args.broker,
                                     "job_id": job["job_id"],
                                     "num_packets": args.packets,
                                     "payload_bits_per_packet":
                                         args.payload_bits,
                                     "seed": args.seed,
                                 })
        print(f"exported {artifact.json_path} (+ .csv)", file=out)
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = sys.stdout if out is None else out
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {"sweep": _command_sweep, "resume": _command_resume,
               "merge": _command_merge, "show": _command_show,
               "report": _command_report, "store": _command_store,
               "query": _command_query, "serve": _command_serve,
               "worker": _command_worker, "submit": _command_submit}[
                   args.command]
    try:
        return handler(args, out)
    except (ValueError, KeyError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly (and point
        # stdout at devnull so the interpreter's exit flush stays silent).
        import os
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0
