"""Named curve-set artifacts: the files benchmarks and examples consume.

An artifact is one sweep's curves written as a pair of files —
``<name>.csv`` (flat rows, one per measured point, for spreadsheets and
plotting scripts) and ``<name>.json`` (the same data plus metadata:
seed, digests, packet budget, code version) — written atomically so a
crashed export never leaves a half-written file behind.  Loading
round-trips back into :class:`repro.core.metrics.BERCurve` objects, so
downstream code works with curves whether they were just simulated or
read from disk.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.metrics import BERCurve, BERPoint
from repro.utils.io import atomic_write_text

__all__ = ["Artifact", "export_curves", "load_artifact"]

_ARTIFACT_VERSION = 1

_CSV_COLUMNS = ("curve", "ebn0_db", "ber", "per", "bit_errors",
                "total_bits", "packets_sent", "packets_failed")


@dataclass(frozen=True)
class Artifact:
    """One exported curve set: its files, curves and metadata."""

    name: str
    csv_path: Path
    json_path: Path
    curves: dict[str, BERCurve]
    metadata: dict

    def curve(self, label: str) -> BERCurve:
        """The stored curve named ``label`` (``KeyError`` lists known ones)."""
        try:
            return self.curves[label]
        except KeyError:
            known = ", ".join(sorted(self.curves)) or "(none)"
            raise KeyError(f"artifact {self.name!r} has no curve "
                           f"{label!r}; curves: {known}") from None


def export_curves(result, directory, name: str,
                  metadata: dict | None = None) -> Artifact:
    """Write a sweep result's curves as a named CSV + JSON artifact.

    ``result`` is a :class:`repro.sim.SweepResult` (anything with a
    ``curves() -> dict[str, BERCurve]`` method works).  ``metadata`` is
    stored verbatim in the JSON file — run drivers put the manifest
    summary (seed, digests, packet budget) there so an artifact is
    self-describing.
    """
    if not name or "/" in name or name.startswith("."):
        raise ValueError(f"artifact name {name!r} must be a plain filename "
                         "stem")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    curves = result.curves()

    csv_path = directory / f"{name}.csv"
    rows = []
    for label in sorted(curves):
        for point in curves[label].points:
            rows.append([label, repr(float(point.ebn0_db)),
                         repr(point.ber), repr(point.per),
                         point.bit_errors, point.total_bits,
                         point.packets_sent, point.packets_failed])
    import io
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)
    writer.writerows(rows)
    atomic_write_text(csv_path, buffer.getvalue())

    json_path = directory / f"{name}.json"
    payload = {
        "artifact_version": _ARTIFACT_VERSION,
        "name": name,
        "metadata": dict(metadata or {}),
        "curves": [{"label": label,
                    "points": [point.to_dict()
                               for point in curves[label].points]}
                   for label in sorted(curves)],
    }
    atomic_write_text(json_path, json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
    return Artifact(name=name, csv_path=csv_path, json_path=json_path,
                    curves=curves, metadata=dict(metadata or {}))


def load_artifact(json_path) -> Artifact:
    """Load a curve-set artifact previously written by :func:`export_curves`."""
    json_path = Path(json_path)
    data = json.loads(json_path.read_text(encoding="utf-8"))
    if data.get("artifact_version") != _ARTIFACT_VERSION:
        raise ValueError("unsupported artifact version "
                         f"{data.get('artifact_version')!r}")
    curves: dict[str, BERCurve] = {}
    try:
        for entry in data["curves"]:
            label = str(entry["label"])
            curve = BERCurve(label=label)
            for record in entry["points"]:
                curve.add(BERPoint.from_dict(record))
            curves[label] = curve
        name = str(data["name"])
        metadata = dict(data.get("metadata", {}))
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed artifact {json_path}: {error}") \
            from None
    return Artifact(name=name,
                    csv_path=json_path.with_suffix(".csv"),
                    json_path=json_path, curves=curves, metadata=metadata)
