"""Sharded, resumable run driver over the content-addressed result store.

A *run* is a directory:

.. code-block:: text

    runs/<name>/
        manifest.json               # grid, seed, digests, shard plan
        store/                      # ResultStore cache directory
            shard-000-of-004.jsonl  # one append-only file per shard writer
            ...
        shards/
            shard-000-of-004.done   # completion marker per shard
        artifacts/                  # named curve exports (repro.runs.artifacts)

The manifest pins everything needed to reproduce the grid — the explicit
point list, engine seed/generation/backend, config digest, packet budget
and the code version that created it — so a shard can execute on any
machine that sees the directory (or a copy of it): shard ``i`` of ``k``
always owns points ``i, i+k, i+2k, ...`` of the manifest order.  Because
the sweep engine keys every point's random stream on point *content*,
shard outputs merge into results bit-identical to an unsharded run, in
any execution order, and a crashed shard resumes by re-running: points
already in the store are served from cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.metrics import BERPoint
from repro.obs.ledger import (LEDGER_NAME, SUMMARY_NAME, EventLedger,
                              write_summary)
from repro.obs.recorder import activate
from repro.sim.engine import (SweepEngine, SweepPoint, SweepResult,
                              chunk_spans)
from repro.runs.store import (STORE_FORMATS, ResultStore,
                              default_store_format, detect_store_format,
                              measurement_key)
from repro.utils.io import atomic_write_text
from repro.utils.validation import require_int

__all__ = ["RunManifest", "RunReport", "RunDriver"]

_MANIFEST_VERSION = 1
_MANIFEST_NAME = "manifest.json"
_STORE_DIR = "store"
_SHARDS_DIR = "shards"
_ARTIFACTS_DIR = "artifacts"


def _code_version() -> str:
    import repro
    return getattr(repro, "__version__", "unknown")


def _point_to_dict(point: SweepPoint) -> dict:
    return {"ebn0_db": float(point.ebn0_db), "scenario": point.scenario,
            "modulation": point.modulation, "adc_bits": point.adc_bits}


def _point_from_dict(data: dict) -> SweepPoint:
    adc_bits = data["adc_bits"]
    return SweepPoint(ebn0_db=float(data["ebn0_db"]),
                      scenario=str(data["scenario"]),
                      modulation=str(data["modulation"]),
                      adc_bits=None if adc_bits is None else int(adc_bits))


@dataclass(frozen=True)
class RunManifest:
    """Everything that identifies and reproduces one sharded run.

    ``array_backend`` records which :mod:`repro.sim.backends` backend
    produced the results (``"numpy"`` for manifests written before the
    backend abstraction existed); :meth:`RunDriver.open` rebuilds the
    engine with it so cached measurements are never mixed across
    backends whose random streams differ.

    ``chunk_packets`` records the run's chunk layout — how each point's
    packet budget splits into seeded chunks (``None``, the historical
    default, is one chunk per point).  The layout determines which
    independent random streams are drawn, so it must be replayed exactly
    for resumed shards to merge bit-identically; like ``num_packets`` it
    is coverage, not identity, and is excluded from :meth:`grid_digest`
    (manifests written before chunking load as ``None`` and old
    point-level cache entries stay readable).

    ``store_format`` records which result-store backend the run's cache
    directory uses (``"jsonl"``, the historical default, or
    ``"sqlite"`` — see :mod:`repro.runs.warehouse`); every store access
    goes through it, so a migrated run keeps opening with the right
    backend.  Like the coverage fields it is excluded from
    :meth:`grid_digest` — the backend changes where bytes live, never
    what they mean.
    """

    name: str
    seed: int
    generation: str
    backend: str
    quantize: bool
    custom_config: bool
    config_digest: str
    num_packets: int
    payload_bits_per_packet: int
    num_shards: int
    code_version: str
    array_backend: str = "numpy"
    chunk_packets: int | None = None
    store_format: str = "jsonl"
    points: tuple[SweepPoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require_int(self.num_shards, "num_shards", minimum=1)
        if self.store_format not in STORE_FORMATS:
            raise ValueError(
                f"run manifest names unknown store format "
                f"{self.store_format!r}; known formats: "
                f"{', '.join(STORE_FORMATS)}")
        require_int(self.num_packets, "num_packets", minimum=1)
        if self.chunk_packets is not None:
            require_int(self.chunk_packets, "chunk_packets", minimum=1)
        require_int(self.payload_bits_per_packet,
                    "payload_bits_per_packet", minimum=1)
        if self.backend not in ("batch", "packet", "fullstack"):
            raise ValueError(
                f"run manifest names unknown backend {self.backend!r}; "
                "this repository knows 'batch', 'packet' and 'fullstack' "
                "(a manifest from a newer code version?)")
        if not self.points:
            raise ValueError("a run needs at least one grid point")

    # -- identity -------------------------------------------------------
    def grid_digest(self) -> str:
        """Digest of the grid's identity: points, config, payload size.

        Two manifests with equal grid digests cache into the same key
        space, so the digest guards against resuming a run directory with
        mismatched arguments.  ``num_packets`` is deliberately excluded —
        packet count is coverage, not identity (the same store tops a
        point up when the budget is raised), mirroring
        :func:`repro.runs.store.measurement_key`.
        """
        import hashlib
        payload = json.dumps({
            "points": [_point_to_dict(point) for point in self.points],
            "config": self.config_digest,
            "payload_bits_per_packet": self.payload_bits_per_packet,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- sharding -------------------------------------------------------
    def points_for_shard(self, shard_index: int) -> tuple[SweepPoint, ...]:
        """Shard ``i`` of ``k`` owns manifest points ``i, i+k, i+2k, ...``.

        Round-robin keeps every shard's load balanced across curves (the
        grid orders Eb/N0 fastest, so contiguous slices would give one
        shard all the slow low-SNR points of a curve).
        """
        require_int(shard_index, "shard_index", minimum=0)
        if shard_index >= self.num_shards:
            raise ValueError(f"shard_index {shard_index} out of range for "
                             f"{self.num_shards} shard(s)")
        return self.points[shard_index::self.num_shards]

    def shard_file_stem(self, shard_index: int) -> str:
        """Base name shared by a shard's store file and completion marker."""
        return f"shard-{shard_index:03d}-of-{self.num_shards:03d}"

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-type mapping persisted as ``manifest.json``."""
        return {
            "manifest_version": _MANIFEST_VERSION,
            "name": self.name,
            "seed": self.seed,
            "generation": self.generation,
            "backend": self.backend,
            "quantize": self.quantize,
            "custom_config": self.custom_config,
            "config_digest": self.config_digest,
            "grid_digest": self.grid_digest(),
            "num_packets": self.num_packets,
            "payload_bits_per_packet": self.payload_bits_per_packet,
            "num_shards": self.num_shards,
            "code_version": self.code_version,
            "array_backend": self.array_backend,
            "chunk_packets": self.chunk_packets,
            "store_format": self.store_format,
            "points": [_point_to_dict(point) for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Parse a manifest mapping, verifying version and grid digest."""
        if data.get("manifest_version") != _MANIFEST_VERSION:
            raise ValueError("unsupported manifest version "
                             f"{data.get('manifest_version')!r}")
        try:
            manifest = cls(
                name=str(data["name"]),
                seed=int(data["seed"]),
                generation=str(data["generation"]),
                backend=str(data["backend"]),
                quantize=bool(data["quantize"]),
                custom_config=bool(data["custom_config"]),
                config_digest=str(data["config_digest"]),
                num_packets=int(data["num_packets"]),
                payload_bits_per_packet=int(data["payload_bits_per_packet"]),
                num_shards=int(data["num_shards"]),
                code_version=str(data["code_version"]),
                array_backend=str(data.get("array_backend", "numpy")),
                chunk_packets=(None if data.get("chunk_packets") is None
                               else int(data["chunk_packets"])),
                store_format=str(data.get("store_format", "jsonl")),
                points=tuple(_point_from_dict(point)
                             for point in data["points"]))
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed run manifest: {error}") from None
        recorded = data.get("grid_digest")
        if recorded is not None and recorded != manifest.grid_digest():
            raise ValueError("run manifest grid digest mismatch (edited "
                             "points or parameters?)")
        return manifest

    def save(self, run_dir) -> Path:
        """Atomically write ``manifest.json`` into ``run_dir``; returns its path."""
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / _MANIFEST_NAME
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2,
                                           sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, run_dir) -> "RunManifest":
        """Read and validate ``run_dir``'s ``manifest.json``."""
        path = Path(run_dir) / _MANIFEST_NAME
        if not path.is_file():
            raise FileNotFoundError(f"no run manifest at {path}")
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))


@dataclass
class RunReport:
    """What one shard execution did: served from cache vs simulated."""

    shard_index: int
    num_shards: int
    points_total: int = 0
    points_cached: int = 0
    points_simulated: int = 0
    packets_cached: int = 0
    packets_simulated: int = 0
    chunks_simulated: int = 0

    @property
    def all_cached(self) -> bool:
        """True when the shard performed zero simulation work."""
        return self.points_simulated == 0 and self.packets_simulated == 0

    def summary(self) -> str:
        """One-line human-readable account of the shard execution."""
        text = (f"shard {self.shard_index}/{self.num_shards}: "
                f"{self.points_total} point(s) -> "
                f"{self.points_simulated} simulated, "
                f"{self.points_cached} cached "
                f"({self.packets_simulated} packets simulated in "
                f"{self.chunks_simulated} chunk(s), "
                f"{self.packets_cached} served from cache)")
        if self.points_total and self.all_cached:
            text += " [all points served from cache]"
        return text

    def merged_with(self, other: "RunReport") -> "RunReport":
        """Pool the counters of two reports (used by ``run_pending``)."""
        return RunReport(
            shard_index=self.shard_index, num_shards=self.num_shards,
            points_total=self.points_total + other.points_total,
            points_cached=self.points_cached + other.points_cached,
            points_simulated=self.points_simulated + other.points_simulated,
            packets_cached=self.packets_cached + other.packets_cached,
            packets_simulated=(self.packets_simulated
                               + other.packets_simulated),
            chunks_simulated=(self.chunks_simulated
                              + other.chunks_simulated))


class RunDriver:
    """Executes, resumes and merges one manifest's shards.

    Build one with :meth:`create` (new run directory) or :meth:`open`
    (existing directory, e.g. to resume after a crash or to execute a
    different shard of the same run on another machine).
    """

    def __init__(self, run_dir, manifest: RunManifest,
                 engine: SweepEngine) -> None:
        self.run_dir = Path(run_dir)
        self.manifest = manifest
        self.engine = engine
        if engine.config_digest() != manifest.config_digest:
            raise ValueError(
                "engine configuration does not match the run manifest "
                "(different seed, generation, backend, quantize or base "
                "config); refusing to mix results")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, run_dir, engine: SweepEngine, points,
               num_packets: int = 32, payload_bits_per_packet: int = 64,
               num_shards: int = 1, name: str | None = None,
               store_format: str | None = None) -> "RunDriver":
        """Start (or idempotently re-open) a run directory for a grid.

        When ``run_dir`` already holds a manifest, the requested grid must
        digest identically — then the existing run is reused (that is what
        makes ``sweep`` re-invocations cache hits) — otherwise a
        ``ValueError`` explains the mismatch.  A different ``num_packets``
        on the same grid is *escalation*, not a different run: the
        manifest adopts the new budget and shard completion markers are
        cleared, so re-running shards simulates only each point's missing
        tail chunk.

        ``store_format`` picks the result-store backend for a *new* run
        (``None`` defers to whatever the store directory already holds,
        then to ``REPRO_STORE_FORMAT``, then ``"jsonl"``).  An existing
        run keeps its recorded format; explicitly requesting a different
        one raises and points at ``python -m repro store migrate``.
        """
        from dataclasses import replace

        run_dir = Path(run_dir)
        points = tuple(points)
        resolved_format = store_format
        if resolved_format is None:
            resolved_format = detect_store_format(run_dir / _STORE_DIR) \
                or default_store_format()
        manifest = RunManifest(
            name=name if name is not None else run_dir.name,
            seed=engine.seed,
            generation=engine.generation,
            backend=engine.backend,
            quantize=engine.quantize,
            custom_config=engine.config is not None,
            config_digest=engine.config_digest(),
            num_packets=num_packets,
            payload_bits_per_packet=payload_bits_per_packet,
            num_shards=num_shards,
            code_version=_code_version(),
            array_backend=engine.array_backend,
            chunk_packets=engine.chunk_packets,
            store_format=resolved_format,
            points=points)
        if (run_dir / _MANIFEST_NAME).is_file():
            existing = RunManifest.load(run_dir)
            if store_format is not None \
                    and store_format != existing.store_format:
                raise ValueError(
                    f"run {run_dir} uses the {existing.store_format!r} "
                    f"store format, not {store_format!r}; convert it "
                    f"with: python -m repro store migrate {run_dir}")
            manifest = replace(manifest,
                               store_format=existing.store_format)
            if existing.grid_digest() != manifest.grid_digest():
                raise ValueError(
                    f"run directory {run_dir} already holds a different "
                    "run (grid digest mismatch); pick another directory "
                    "or delete the old run")
            if existing.num_shards != manifest.num_shards:
                raise ValueError(
                    f"run {run_dir} was created with "
                    f"{existing.num_shards} shard(s), not "
                    f"{manifest.num_shards}; the shard plan is fixed at "
                    "creation")
            if (existing.num_packets == manifest.num_packets
                    and existing.chunk_packets == manifest.chunk_packets):
                manifest = existing
            else:
                # A coverage change on the same grid: record it.  The
                # store is untouched; every cached chunk still counts.
                manifest.save(run_dir)
                if existing.num_packets != manifest.num_packets:
                    # Escalated (or reduced) packet budget: invalidate
                    # completion markers — they certified coverage of the
                    # old budget.  A mere chunk-layout change keeps them:
                    # the packets they certify are still covered.
                    for marker in (run_dir / _SHARDS_DIR).glob("*.done"):
                        marker.unlink()
        else:
            manifest.save(run_dir)
        return cls(run_dir, manifest, engine)

    @classmethod
    def open(cls, run_dir, engine: SweepEngine | None = None) -> "RunDriver":
        """Open an existing run, rebuilding the engine from the manifest.

        Runs created from an engine with a custom base config cannot
        rebuild it from JSON; pass the same ``engine`` explicitly (it is
        digest-checked against the manifest).
        """
        manifest = RunManifest.load(run_dir)
        if engine is None:
            if manifest.custom_config:
                raise ValueError(
                    "this run was created with a custom base config; pass "
                    "the same engine to RunDriver.open()")
            engine = SweepEngine(generation=manifest.generation,
                                 seed=manifest.seed,
                                 backend=manifest.backend,
                                 quantize=manifest.quantize,
                                 array_backend=manifest.array_backend,
                                 chunk_packets=manifest.chunk_packets)
        return cls(run_dir, manifest, engine)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def store_dir(self) -> Path:
        """The run's content-addressed result store directory."""
        return self.run_dir / _STORE_DIR

    @property
    def artifacts_dir(self) -> Path:
        """Where ``merge`` exports named curve artifacts."""
        return self.run_dir / _ARTIFACTS_DIR

    def _marker_path(self, shard_index: int) -> Path:
        return (self.run_dir / _SHARDS_DIR
                / (self.manifest.shard_file_stem(shard_index) + ".done"))

    def open_store(self, writer_name: str = "store.jsonl") -> ResultStore:
        """Open the run's store with the manifest's recorded backend."""
        return ResultStore.open(self.store_dir,
                                format=self.manifest.store_format,
                                writer_name=writer_name)

    def store_for_shard(self, shard_index: int) -> ResultStore:
        """The shared store, writing under this shard's own writer name.

        On the JSONL backend that is the shard's private append file; on
        the SQLite backend the name becomes each chunk row's provenance
        tag.
        """
        stem = self.manifest.shard_file_stem(shard_index)
        return self.open_store(writer_name=stem + ".jsonl")

    def register_with_warehouse(self, store: ResultStore) -> None:
        """Populate a warehouse store's point metadata and run registry.

        Describes every manifest point's measurement key (scenario,
        modulation, Eb/N0, config digest — what ``python -m repro
        query`` filters on) and registers the run's key requirements
        (what ``store gc --keep-runs`` retains by).  A no-op on backends
        without a registry (the JSONL format).
        """
        if not hasattr(store, "register_run"):
            return
        manifest = self.manifest
        entries = []
        keys = []
        for point in manifest.points:
            key = self._key_for(point)
            keys.append(key)
            entries.append((key, {
                "scenario": point.scenario,
                "modulation": point.modulation,
                "adc_bits": point.adc_bits,
                "ebn0_db": point.ebn0_db,
                "config_digest": manifest.config_digest,
                "payload_bits_per_packet":
                    manifest.payload_bits_per_packet,
            }))
        store.describe_keys(entries)
        store.register_run(manifest.name, manifest.grid_digest(),
                           manifest.num_packets, keys)

    def _key_for(self, point: SweepPoint) -> str:
        return measurement_key(self.engine.point_digest(point),
                               self.manifest.config_digest,
                               self.manifest.payload_bits_per_packet)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_shard(self, shard_index: int = 0,
                  max_workers: int | None = None,
                  on_point=None, on_chunk=None, on_plan=None) -> RunReport:
        """Execute one shard: cached chunks are served, the rest simulated.

        Each missing point's uncovered tail is decomposed into the
        manifest's chunk layout; chunks already in the store (even beyond
        a coverage gap left by a crashed or faulted run) are skipped, so
        a resume re-runs *only* the missing chunks.  The chunk tasks of
        all points fan out together when ``max_workers`` is set (through
        :meth:`repro.sim.SweepEngine.measure_points`, shared-memory
        input/result transport) — results are bit-identical to a serial
        run of the same layout, and every completed chunk is persisted
        even when another chunk's worker fails mid-shard.  Safe to
        re-run after a crash — completed chunks are already in the store
        and skipped.

        Progress hooks (all optional; what ``--progress`` drives):
        ``on_plan(num_chunks, packets_cached)`` once after cache
        resolution, ``on_chunk(point, packet_offset, measurement)`` per
        freshly simulated chunk (after it is persisted), ``on_point
        (point, measurement, source)`` per point in shard order with
        ``source`` ``"cached"`` or ``"simulated"``.

        When the engine carries an enabled :class:`repro.obs.Recorder`,
        the shard's telemetry (cache hit/miss counters, chunk spans, the
        ``driver.run_shard`` envelope span) is flushed — in a
        ``finally``, so a crashed shard still leaves its partial ledger
        — to ``events.jsonl`` + ``telemetry.json`` in the run directory.
        """
        recorder = self.engine.recorder
        try:
            with activate(recorder), \
                    recorder.span("driver.run_shard",
                                  shard=int(shard_index)):
                return self._run_shard_inner(shard_index, max_workers,
                                             on_point, on_chunk, on_plan)
        finally:
            if recorder.enabled:
                self.flush_telemetry()

    def _run_shard_inner(self, shard_index: int, max_workers, on_point,
                         on_chunk, on_plan) -> RunReport:
        manifest = self.manifest
        recorder = self.engine.recorder
        points = manifest.points_for_shard(shard_index)
        store = self.store_for_shard(shard_index)
        self.register_with_warehouse(store)
        report = RunReport(shard_index=shard_index,
                           num_shards=manifest.num_shards,
                           points_total=len(points))
        requested = manifest.num_packets
        payload_bits = manifest.payload_bits_per_packet

        resolved: dict[int, BERPoint] = {}
        jobs: list[tuple[int, SweepPoint, str, int]] = []
        chunk_jobs: list[tuple[SweepPoint, int, int]] = []
        key_by_point: dict[SweepPoint, str] = {}
        chunks_resumed = 0
        for index, point in enumerate(points):
            key = self._key_for(point)
            key_by_point[point] = key
            cached = store.lookup(key, requested)
            if cached is not None:
                resolved[index] = cached
                report.points_cached += 1
                report.packets_cached += cached.packets_sent
                continue
            covered = store.coverage(key)
            stored = store.chunks_for(key)
            spans = chunk_spans(requested - covered,
                                manifest.chunk_packets, covered)
            missing = [(offset, packets) for offset, packets in spans
                       if stored.get(offset) != packets]
            chunks_resumed += len(spans) - len(missing)
            jobs.append((index, point, key, covered))
            chunk_jobs.extend((point, packets, offset)
                              for offset, packets in missing)
            report.packets_cached += covered + sum(
                packets for offset, packets in stored.items()
                if offset >= covered)
        recorder.counter("cache.points_hit", report.points_cached)
        recorder.counter("cache.points_missed", len(jobs))
        recorder.counter("cache.chunks_resumed", chunks_resumed)
        recorder.counter("cache.packets_cached", report.packets_cached)
        if on_plan is not None:
            on_plan(len(chunk_jobs), report.packets_cached)

        def persist(point, packet_offset, measurement) -> None:
            # Store writes stay on the driver thread, in deterministic
            # schedule order — and they happen for every completed chunk
            # even when a sibling chunk's failure is about to propagate,
            # which is what makes a faulted shard resumable.
            store.add_chunk(key_by_point[point], packet_offset, measurement)
            report.chunks_simulated += 1
            report.packets_simulated += measurement.packets_sent
            if on_chunk is not None:
                on_chunk(point, packet_offset, measurement)

        if chunk_jobs:
            # The spans above already realize the manifest's layout; a
            # chunk size >= any span keeps each one a single chunk, so
            # the engine's own default layout can never re-split them.
            self.engine.measure_points(
                chunk_jobs, payload_bits_per_packet=payload_bits,
                max_workers=max_workers, chunk_packets=requested,
                on_chunk=persist)

        for index, point, key, covered in jobs:
            resolved[index] = store.lookup(key, requested)
            report.points_simulated += 1

        if on_point is not None:
            simulated = {index for index, *_ in jobs}
            for index, point in enumerate(points):
                source = "simulated" if index in simulated else "cached"
                on_point(point, resolved[index], source)

        marker = self._marker_path(shard_index)
        marker.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(marker, json.dumps({
            "shard_index": shard_index,
            "num_shards": manifest.num_shards,
            "points_total": report.points_total,
            "points_simulated": report.points_simulated,
            "points_cached": report.points_cached,
        }, sort_keys=True) + "\n")
        return report

    def flush_telemetry(self) -> dict:
        """Flush the engine recorder into the run's telemetry artifacts.

        Drains the recorder's events into the append-only
        ``events.jsonl`` ledger (one atomic append per flush), then
        atomically rewrites ``telemetry.json`` as the aggregate of the
        *whole* ledger — so concurrent or sequential shard executions
        compose, and a crash between the two writes costs only summary
        freshness, never raw events.  Returns the summary payload.
        """
        ledger = EventLedger(self.run_dir / LEDGER_NAME)
        ledger.append(self.engine.recorder.drain())
        events, _corrupt = ledger.read()
        return write_summary(self.run_dir / SUMMARY_NAME, events)

    def pending_shards(self) -> tuple[int, ...]:
        """Shards without a completion marker (crashed, or never started)."""
        return tuple(index for index in range(self.manifest.num_shards)
                     if not self._marker_path(index).is_file())

    def shard_status(self) -> dict[int, str]:
        """Per-shard state: ``done``, ``partial`` (some points cached) or
        ``pending``."""
        status: dict[int, str] = {}
        store = self.open_store()
        for index in range(self.manifest.num_shards):
            if self._marker_path(index).is_file():
                status[index] = "done"
                continue
            covered = sum(
                1 for point in self.manifest.points_for_shard(index)
                if store.lookup(self._key_for(point),
                                self.manifest.num_packets) is not None)
            status[index] = "partial" if covered else "pending"
        return status

    def shard_progress(self) -> dict[int, dict]:
        """Per-shard chunk/cache detail (what ``python -m repro show``
        renders).

        For every shard: its :meth:`shard_status` state, how many of its
        points are fully measured, its point total, how many store
        chunks cover its points, and how many packets those chunks hold.
        Derived from the manifest and the content-addressed store alone,
        so it works on live, crashed, and finished runs alike.
        """
        statuses = self.shard_status()
        store = self.open_store()
        progress: dict[int, dict] = {}
        for index in range(self.manifest.num_shards):
            points = self.manifest.points_for_shard(index)
            measured = 0
            chunks = 0
            packets = 0
            for point in points:
                key = self._key_for(point)
                if store.lookup(key,
                                self.manifest.num_packets) is not None:
                    measured += 1
                stored = store.chunks_for(key)
                chunks += len(stored)
                packets += sum(stored.values())
            progress[index] = {
                "status": statuses[index],
                "points_measured": measured,
                "points_total": len(points),
                "chunks_stored": chunks,
                "packets_stored": packets,
            }
        return progress

    def run_pending(self, max_workers: int | None = None,
                    on_point=None) -> RunReport:
        """Execute every shard that has no completion marker (resume)."""
        report = RunReport(shard_index=0,
                           num_shards=self.manifest.num_shards)
        for shard_index in self.pending_shards():
            report = report.merged_with(
                self.run_shard(shard_index, max_workers=max_workers,
                               on_point=on_point))
        return report

    @property
    def is_complete(self) -> bool:
        """True when every shard has a completion marker."""
        return not self.pending_shards()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, strict: bool = True) -> SweepResult:
        """Merge every shard's stored measurements into one result.

        The result is assembled in manifest point order from the content-
        addressed store, so it is identical whatever machines, shard
        counts, or execution orders produced the cache.  With ``strict``
        (default) a missing point raises; ``strict=False`` returns the
        measured subset (useful for eyeballing a run in flight).
        """
        store = self.open_store()
        entries = []
        missing = []
        for point in self.manifest.points:
            measurement = store.lookup(self._key_for(point),
                                       self.manifest.num_packets)
            if measurement is None:
                missing.append(point)
            else:
                entries.append((point, measurement))
        if missing and strict:
            raise ValueError(
                f"{len(missing)} of {len(self.manifest.points)} point(s) "
                f"are not fully measured yet (e.g. {missing[0]}); run the "
                "pending shards or merge with strict=False")
        return SweepResult(entries=entries)
