"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments whose setuptools/pip are too
old for PEP 660 editable installs (``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.9.0",
    description=("Pulse-level simulation library reproducing 'Direct "
                 "Conversion Pulsed UWB Transceiver Architecture' "
                 "(Blazquez et al., DATE 2005)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
