"""Power / QoS / data-rate adaptation (Section 3's trade-off claim).

"This receiver allows us to trade off power dissipation with signal
processing complexity, quality of service and data rate, adapting to channel
conditions."

This example walks a link through changing channel conditions — the user
walks away from the access point, a WLAN interferer appears, the multipath
gets heavier — and shows which operating mode the adaptation controller
picks, what data rate it delivers, and what the modelled receiver power is.

Run with:  python examples/adaptive_operating_modes.py
"""

from repro.core import AdaptationController, ChannelConditions, Gen2Config
from repro.power import gen1_power_budget, gen2_power_budget


SCENARIOS = [
    ("desk, 1 m, clean channel",
     ChannelConditions(snr_db=22.0, rms_delay_spread_s=4e-9,
                       interferer_detected=False)),
    ("across the room, 4 m",
     ChannelConditions(snr_db=13.0, rms_delay_spread_s=8e-9,
                       interferer_detected=False)),
    ("next room, heavy multipath",
     ChannelConditions(snr_db=9.0, rms_delay_spread_s=22e-9,
                       interferer_detected=False)),
    ("next room + WLAN interferer",
     ChannelConditions(snr_db=9.0, rms_delay_spread_s=22e-9,
                       interferer_detected=True)),
    ("edge of range",
     ChannelConditions(snr_db=3.0, rms_delay_spread_s=25e-9,
                       interferer_detected=False)),
]


def print_power_budgets() -> None:
    print("System power budgets (behavioural models, 0.18 um class)")
    for name, budget in (("gen-1", gen1_power_budget()),
                         ("gen-2", gen2_power_budget())):
        print(f"  {name}: total {budget.total_w() * 1e3:6.1f} mW, "
              f"ADC + digital back end = "
              f"{budget.adc_plus_digital_fraction():.0%} of total")
    print()


def main() -> None:
    print_power_budgets()

    controller = AdaptationController(Gen2Config())
    print("Adaptation decisions as the channel degrades")
    header = (f"{'scenario':<32} {'mode':<14} {'rate':>10} {'RAKE':>5} "
              f"{'MLSE':>5} {'ADC':>4} {'notch':>6} {'power':>9}")
    print(header)
    print("-" * len(header))
    for label, conditions in SCENARIOS:
        mode = controller.select_max_throughput(conditions)
        print(f"{label:<32} {mode.name:<14} "
              f"{mode.data_rate_bps / 1e6:>7.1f} Mb "
              f"{mode.rake_fingers:>5} "
              f"{'yes' if mode.use_mlse else 'no':>5} "
              f"{mode.adc_bits:>4} "
              f"{'on' if mode.notch_enabled else 'off':>6} "
              f"{mode.power_w * 1e3:>6.1f} mW")

    print()
    print("Rate/power frontier at 20 dB SNR (every feasible mode):")
    frontier = controller.rate_power_frontier(ChannelConditions(snr_db=20.0))
    for rate, power in frontier:
        print(f"  {rate / 1e6:6.1f} Mbps  ->  {power * 1e3:6.1f} mW receiver power")

    print()
    print("The controller spends correlator fingers, Viterbi states, ADC bits")
    print("and the notch filter only when the channel demands them — the")
    print("power / complexity / QoS / data-rate trade-off the paper describes.")


if __name__ == "__main__":
    main()
