"""Narrowband-interferer detection and mitigation (the Fig. 3 control loop).

A WLAN-style narrowband interferer sits inside the receiver's 500 MHz
sub-band.  The digital back end's spectral monitor detects it, estimates its
frequency, and the estimate drives a notch ahead of synchronization — the
"Spectral Monitoring" -> notch-filter control path of Fig. 3.

This example shows each stage explicitly:

1. the spectral monitor's detection decision and frequency estimate,
2. the notch rejection actually applied at that frequency, and
3. the packet outcome with the mitigation loop off versus on.

Run with:  python examples/interferer_mitigation.py
"""

import numpy as np

from repro.channel import ToneInterferer, interferer_amplitude_for_sir
from repro.core import Gen2Config, Gen2Transceiver
from repro.dsp import DigitalNotchFilter, SpectralMonitor


INTERFERER_FREQUENCY_HZ = 140e6   # offset from the sub-band centre
SIR_DB = -15.0                    # interferer 15 dB stronger than the signal
EBN0_DB = 14.0


def monitor_stage(rng: np.random.Generator) -> float:
    """Run the spectral monitor on a signal+interferer capture."""
    signal = 0.1 * (rng.standard_normal(4096) + 1j * rng.standard_normal(4096))
    amplitude = interferer_amplitude_for_sir(signal, SIR_DB)
    interferer = ToneInterferer(frequency_hz=INTERFERER_FREQUENCY_HZ,
                                amplitude=amplitude)
    capture = interferer.add_to(signal, 1e9)

    monitor = SpectralMonitor(sample_rate_hz=1e9)
    report = monitor.analyze(capture)
    print("Spectral monitor")
    print(f"  interferer detected   : {report.detected}")
    print(f"  estimated frequency   : {report.frequency_hz / 1e6:.1f} MHz "
          f"(true {INTERFERER_FREQUENCY_HZ / 1e6:.1f} MHz)")
    print(f"  power above UWB floor : {report.power_above_floor_db:.1f} dB")

    notch = DigitalNotchFilter(notch_frequency_hz=report.frequency_hz,
                               sample_rate_hz=1e9)
    print(f"  notch rejection at estimate : "
          f"{notch.rejection_at_db(INTERFERER_FREQUENCY_HZ):.1f} dB")
    print()
    return report.frequency_hz


def link_stage() -> None:
    """Packet outcomes with and without the mitigation loop."""
    print("Gen-2 packets with a strong in-band interferer "
          f"(SIR = {SIR_DB:.0f} dB, Eb/N0 = {EBN0_DB:.0f} dB)")
    for notch_enabled in (False, True):
        config = Gen2Config.fast_test_config().with_changes(
            enable_digital_notch=notch_enabled)
        transceiver = Gen2Transceiver(config, rng=np.random.default_rng(11))
        failures = 0
        errors = 0
        total = 0
        for index in range(5):
            probe = transceiver.transmitter.transmit(
                np.zeros(64, dtype=np.int64)).waveform
            amplitude = interferer_amplitude_for_sir(probe, SIR_DB)
            interferer = ToneInterferer(frequency_hz=INTERFERER_FREQUENCY_HZ,
                                        amplitude=amplitude)
            simulation = transceiver.simulate_packet(
                num_payload_bits=64, ebn0_db=EBN0_DB, interferer=interferer,
                rng=np.random.default_rng(100 + index))
            result = simulation.result
            failures += 0 if result.packet_success else 1
            errors += result.payload_bit_errors
            total += result.num_payload_bits
        label = "monitor + notch ON " if notch_enabled else "mitigation OFF     "
        print(f"  {label}: {failures}/5 packets lost, "
              f"payload BER {errors / total:.3f}")
    print()
    print("The notch recovers the link that the interferer had taken down —")
    print("the reason Fig. 3 routes the spectral monitor's estimate to a")
    print("notch filter in the front end.")


def main() -> None:
    rng = np.random.default_rng(1)
    monitor_stage(rng)
    link_stage()


if __name__ == "__main__":
    main()
