"""Discrete prototype platform: Fig. 4 waveforms and modulation comparison.

The paper's discrete prototype generates arbitrary signals within a 500 MHz
bandwidth so that modulation schemes can be compared under identical
conditions.  This example:

1. regenerates the Fig. 4 waveform (a 500 MHz pulse on a 5 GHz carrier,
   150 mV peak) and prints its measurable properties,
2. checks that a pulse train built from it can be scaled to the FCC
   -41.3 dBm/MHz mask, and
3. runs the modulation-scheme comparison (BPSK / OOK / PPM / 4-PAM).

Run with:  python examples/prototype_waveforms.py
"""

import numpy as np

from repro.pulses import (
    check_mask_compliance,
    fig4_prototype_pulse,
    max_compliant_scale,
    summarize_spectrum,
)
from repro.prototype import DiscretePrototypePlatform, ModulationComparison


def fig4_waveform() -> None:
    pulse = fig4_prototype_pulse()
    summary = summarize_spectrum(pulse.passband, pulse.sample_rate_hz)
    print("Fig. 4 waveform (regenerated)")
    print(f"  carrier (spectral peak) : {summary.peak_frequency_hz / 1e9:.2f} GHz")
    print(f"  peak amplitude          : {pulse.peak_amplitude * 1e3:.0f} mV")
    print(f"  -10 dB bandwidth        : {summary.bandwidth_10db_hz / 1e6:.0f} MHz")
    print(f"  fractional bandwidth    : {summary.fractional_bandwidth:.2f}")
    print(f"  qualifies as UWB        : {summary.qualifies_as_uwb}")
    print()


def fcc_scaling() -> None:
    pulse = fig4_prototype_pulse()
    repetition = np.zeros(int(round(20e-9 * pulse.sample_rate_hz)))
    repetition[:pulse.passband.size] += pulse.passband[:repetition.size]
    train = np.tile(repetition, 50)
    scale = max_compliant_scale(train, pulse.sample_rate_hz)
    report = check_mask_compliance(train * scale, pulse.sample_rate_hz)
    print("FCC mask check of a 50 MHz-PRF pulse train built from the Fig. 4 pulse")
    print(f"  amplitude scale to reach the mask : {scale:.2e}")
    print(f"  compliant after scaling           : {report.compliant}")
    print(f"  worst-case margin                 : {report.worst_margin_db:.2f} dB "
          f"at {report.worst_frequency_hz / 1e9:.2f} GHz")
    print()


def modulation_comparison() -> None:
    platform = DiscretePrototypePlatform()
    comparison = ModulationComparison(platform,
                                      rng=np.random.default_rng(5))
    ebn0_grid = [2.0, 6.0, 10.0]
    results = comparison.run_all(("bpsk", "ook", "ppm", "pam4"), ebn0_grid,
                                 num_bits=3000)
    print("Modulation comparison on the prototype (BER)")
    header = f"{'Eb/N0 [dB]':>10} " + " ".join(f"{s.upper():>10}"
                                               for s in results)
    print(header)
    for index, ebn0 in enumerate(ebn0_grid):
        row = f"{ebn0:>10.1f} "
        row += " ".join(f"{results[s].measured_ber[index]:>10.3e}"
                        for s in results)
        print(row)
    print()
    print("BPSK's antipodal signalling is the most power-efficient, which is")
    print("why both chips modulate pulse polarity; OOK and PPM give up ~3 dB,")
    print("and 4-PAM trades sensitivity for two bits per pulse.")


def main() -> None:
    fig4_waveform()
    fcc_scaling()
    modulation_comparison()


if __name__ == "__main__":
    main()
