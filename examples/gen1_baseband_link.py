"""First-generation baseband pulsed link (the Fig. 1 chip).

The gen-1 system-on-chip transmits carrier-free Gaussian monocycles, samples
them with a 2 GSPS 4-way time-interleaved flash ADC, and synchronizes
entirely in the digital domain.  The demonstrated link ran at 193 kbps and
packet synchronization completed in under 70 us.

This example reproduces the accounting behind those numbers, sweeps the
link through a persistent ``repro.runs`` run — so a second sweep of the
same grid is served entirely from the content-addressed result store —
and spot-checks acquisition with the full per-packet stack.

Run with:  python examples/gen1_baseband_link.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import Gen1Config, Gen1Transceiver, LinkSimulator
from repro.dsp import acquisition_time_s
from repro.runs import RunDriver, export_curves, load_artifact
from repro.sim import SweepEngine, sweep_grid


def paper_rate_accounting() -> None:
    config = Gen1Config()
    print("Gen-1 paper-rate configuration")
    print(f"  pulse repetition interval : {config.pulse_repetition_interval_s * 1e9:.0f} ns "
          f"({1 / config.pulse_repetition_interval_s / 1e6:.0f} MHz PRF)")
    print(f"  pulses per bit            : {config.pulses_per_bit}")
    print(f"  channel bit rate          : {config.data_rate_bps / 1e3:.1f} kbps "
          "(paper: 193 kbps)")
    print(f"  ADC                       : {config.adc_interleave_factor}-way interleaved "
          f"{config.adc_bits}-bit flash at {config.adc_rate_hz / 1e9:.0f} GSPS")

    hypotheses = config.samples_per_pri_adc * config.packet.preamble.sequence_length
    search = acquisition_time_s(hypotheses,
                                parallelism=config.acquisition_parallelism,
                                backend_clock_hz=config.backend_clock_hz)
    sync = config.preamble_duration_s + search
    print(f"  preamble air time         : {config.preamble_duration_s * 1e6:.1f} us")
    print(f"  parallel search latency   : {search * 1e6:.1f} us "
          f"({config.acquisition_parallelism} hypothesis lanes)")
    print(f"  total packet sync time    : {sync * 1e6:.1f} us (paper: < 70 us)")
    print()


def monte_carlo_link() -> None:
    # The batched sweep engine vectorizes the Monte-Carlo loop, so a dense
    # Eb/N0 sweep with many packets per point costs well under a second —
    # and running it through repro.runs persists every measured point in a
    # content-addressed store, so repeating the sweep costs nothing at all.
    engine = SweepEngine(generation="gen1", seed=21)
    grid = sweep_grid(np.arange(0.0, 14.0, 2.0),
                      scenarios=("gen1_baseline",))

    with tempfile.TemporaryDirectory() as scratch:
        run_dir = Path(scratch) / "gen1_baseline"
        driver = RunDriver.create(run_dir, engine, grid, num_packets=50,
                                  payload_bits_per_packet=48)
        first = driver.run_shard(0)
        second = RunDriver.open(run_dir).run_shard(0)

        # Downstream consumers read the exported artifact, not in-memory
        # arrays — the same files `python -m repro merge` writes.
        artifact = export_curves(driver.merge(), driver.artifacts_dir,
                                 "gen1_baseline",
                                 metadata={"seed": engine.seed})
        curve = load_artifact(artifact.json_path).curve("gen1_baseline/bpsk")

        print("Monte-Carlo link (cached repro.runs sweep, 50 packets per point)")
        print(f"  first pass  : {first.points_simulated} points simulated")
        print(f"  second pass : {second.points_cached} points served from "
              "the result store"
              + (" (zero simulation work)" if second.all_cached else ""))
        print(f"{'Eb/N0 [dB]':>10} {'BER':>12} {'PER':>6}")
        for ebn0, ber, per in curve.as_rows():
            print(f"{ebn0:>10.1f} {ber:>12.3e} {per:>6.2f}")
    print()

    # Acquisition is a full-stack behaviour (the batched path is
    # genie-timed), so spot-check it with the per-packet simulator.
    config = Gen1Config.fast_test_config()
    transceiver = Gen1Transceiver(config, rng=np.random.default_rng(21))
    simulator = LinkSimulator(transceiver, rng=np.random.default_rng(22))
    stats = simulator.acquisition_statistics(ebn0_db=10.0, num_packets=5,
                                             payload_bits_per_packet=16)
    print(f"acquisition at 10 dB: detection {stats.detection_probability:.2f}, "
          f"RMS timing error {stats.rms_timing_error_samples:.2f} samples")
    print()
    print("At moderate Eb/N0 the link is error-free and every preamble is")
    print("acquired — the behaviour the 193 kbps demonstration relied on.")


def main() -> None:
    paper_rate_accounting()
    monte_carlo_link()


if __name__ == "__main__":
    main()
