"""First-generation baseband pulsed link (the Fig. 1 chip).

The gen-1 system-on-chip transmits carrier-free Gaussian monocycles, samples
them with a 2 GSPS 4-way time-interleaved flash ADC, and synchronizes
entirely in the digital domain.  The demonstrated link ran at 193 kbps and
packet synchronization completed in under 70 us.

This example reproduces the accounting behind those numbers and runs a
scaled-down Monte-Carlo link to show the receiver working.

Run with:  python examples/gen1_baseband_link.py
"""

import numpy as np

from repro.core import Gen1Config, Gen1Transceiver, LinkSimulator
from repro.dsp import acquisition_time_s


def paper_rate_accounting() -> None:
    config = Gen1Config()
    print("Gen-1 paper-rate configuration")
    print(f"  pulse repetition interval : {config.pulse_repetition_interval_s * 1e9:.0f} ns "
          f"({1 / config.pulse_repetition_interval_s / 1e6:.0f} MHz PRF)")
    print(f"  pulses per bit            : {config.pulses_per_bit}")
    print(f"  channel bit rate          : {config.data_rate_bps / 1e3:.1f} kbps "
          "(paper: 193 kbps)")
    print(f"  ADC                       : {config.adc_interleave_factor}-way interleaved "
          f"{config.adc_bits}-bit flash at {config.adc_rate_hz / 1e9:.0f} GSPS")

    hypotheses = config.samples_per_pri_adc * config.packet.preamble.sequence_length
    search = acquisition_time_s(hypotheses,
                                parallelism=config.acquisition_parallelism,
                                backend_clock_hz=config.backend_clock_hz)
    sync = config.preamble_duration_s + search
    print(f"  preamble air time         : {config.preamble_duration_s * 1e6:.1f} us")
    print(f"  parallel search latency   : {search * 1e6:.1f} us "
          f"({config.acquisition_parallelism} hypothesis lanes)")
    print(f"  total packet sync time    : {sync * 1e6:.1f} us (paper: < 70 us)")
    print()


def monte_carlo_link() -> None:
    # Reduced pulses-per-bit so the Monte-Carlo loop stays fast; the receive
    # pipeline (interleaved flash ADC, acquisition, RAKE, Viterbi decode) is
    # identical to the paper-rate configuration.
    config = Gen1Config.fast_test_config()
    transceiver = Gen1Transceiver(config, rng=np.random.default_rng(21))
    simulator = LinkSimulator(transceiver, rng=np.random.default_rng(22))

    print("Monte-Carlo link (scaled pulses-per-bit for speed)")
    print(f"{'Eb/N0 [dB]':>10} {'BER':>12} {'PER':>6} {'detection':>10}")
    for ebn0 in (6.0, 10.0, 14.0):
        point = simulator.ber_point(ebn0, num_packets=5,
                                    payload_bits_per_packet=48)
        stats = simulator.acquisition_statistics(ebn0_db=ebn0, num_packets=5,
                                                 payload_bits_per_packet=16)
        print(f"{ebn0:>10.1f} {point.ber:>12.3e} {point.per:>6.2f} "
              f"{stats.detection_probability:>10.2f}")
    print()
    print("At moderate Eb/N0 the link is error-free and every preamble is")
    print("acquired — the behaviour the 193 kbps demonstration relied on.")


def main() -> None:
    paper_rate_accounting()
    monte_carlo_link()


if __name__ == "__main__":
    main()
