"""Gen-2 link over an 802.15.3a multipath channel: the RAKE at work.

The paper's motivating impairment is the indoor UWB channel with an RMS
delay spread on the order of 20 ns.  This example:

1. draws channel realizations from the IEEE 802.15.3a Saleh-Valenzuela
   model (CM1 = line-of-sight, CM3 = non-line-of-sight office),
2. runs the gen-2 transceiver over them with the sweep engine's per-packet
   backend — the scenarios come from the registry by name, and the finger
   count is a configuration knob, and
3. compares against the batched backend, whose genie matched filter is the
   all-finger RAKE bound the programmable RAKE is chasing.

Run with:  python examples/multipath_rake_link.py
"""

import numpy as np

from repro.channel import CM1, CM3, SalehValenzuelaChannelGenerator
from repro.core import Gen2Config
from repro.sim import SweepEngine


def describe_channels() -> None:
    print("802.15.3a channel statistics (20 realizations each)")
    for parameters in (CM1, CM3):
        generator = SalehValenzuelaChannelGenerator(
            parameters, rng=np.random.default_rng(1), complex_gains=True)
        spread = generator.average_rms_delay_spread_s(num_realizations=20)
        print(f"  {parameters.name}: nominal {parameters.nominal_rms_delay_spread_ns:.0f} ns, "
              f"measured mean RMS delay spread {spread * 1e9:.1f} ns")
    print()


def run_link(scenario: str, rake_fingers: int, ebn0_db: float,
             num_packets: int = 5):
    """BER of the full gen-2 stack over a registry scenario."""
    config = Gen2Config.fast_test_config().with_changes(
        rake_fingers=rake_fingers,
        channel_estimate_taps=48,
        use_mlse=True)
    engine = SweepEngine(config=config, generation="gen2", seed=2,
                         backend="packet")
    curve = engine.ber_curve([ebn0_db], scenario=scenario,
                             num_packets=num_packets,
                             payload_bits_per_packet=64)
    return curve.points[0]


def ideal_bound_ber(scenario: str, ebn0_db: float, num_seeds: int = 8,
                    num_packets: int = 25) -> float:
    """Average BER of the batched genie matched filter (all-finger RAKE).

    The batch backend applies one channel realization per run, so average
    over several seeds to integrate over the channel ensemble the
    per-packet rows see; only BER is comparable (the batched path has no
    CRC, so its packet-error accounting differs).
    """
    bers = []
    for seed in range(num_seeds):
        engine = SweepEngine(generation="gen2", seed=seed, backend="batch")
        curve = engine.ber_curve([ebn0_db], scenario=scenario,
                                 num_packets=num_packets,
                                 payload_bits_per_packet=64)
        bers.append(curve.points[0].ber)
    return float(np.mean(bers))


def main() -> None:
    describe_channels()

    print("BER of the gen-2 link over CM1 (LOS) and CM3 (NLOS) scenarios")
    print(f"{'model':>6} {'fingers':>8} {'Eb/N0 [dB]':>11} {'BER':>10} {'PER':>6}")
    for scenario in ("cm1", "cm3"):
        for fingers in (1, 4, 8):
            for ebn0 in (12.0, 18.0):
                point = run_link(scenario, fingers, ebn0)
                print(f"{scenario.upper():>6} {fingers:>8} {ebn0:>11.1f} "
                      f"{point.ber:>10.3e} {point.per:>6.2f}")
        bound = ideal_bound_ber(scenario, 12.0)
        print(f"{scenario.upper():>6} {'ideal':>8} {12.0:>11.1f} "
              f"{bound:>10.3e} {'-':>6}   (batched genie RAKE, "
              "channel-ensemble average)")
    print()
    print("More RAKE fingers capture more of the channel's spread energy,")
    print("closing on the batched engine's all-finger matched-filter bound —")
    print("exactly the paper's argument for a programmable RAKE: spend")
    print("correlator power only when the channel demands it.")


if __name__ == "__main__":
    main()
