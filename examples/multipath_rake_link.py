"""Gen-2 link over an 802.15.3a multipath channel: the RAKE at work.

The paper's motivating impairment is the indoor UWB channel with an RMS
delay spread on the order of 20 ns.  This example:

1. draws channel realizations from the IEEE 802.15.3a Saleh-Valenzuela
   model (CM1 = line-of-sight, CM3 = non-line-of-sight office),
2. runs the gen-2 transceiver over them at several Eb/N0 points, and
3. shows how the RAKE finger count changes the captured channel energy and
   the resulting packet outcomes.

Run with:  python examples/multipath_rake_link.py
"""

import numpy as np

from repro.channel import CM1, CM3, SalehValenzuelaChannelGenerator
from repro.core import Gen2Config, Gen2Transceiver, LinkSimulator


def describe_channels() -> None:
    print("802.15.3a channel statistics (20 realizations each)")
    for parameters in (CM1, CM3):
        generator = SalehValenzuelaChannelGenerator(
            parameters, rng=np.random.default_rng(1), complex_gains=True)
        spread = generator.average_rms_delay_spread_s(num_realizations=20)
        print(f"  {parameters.name}: nominal {parameters.nominal_rms_delay_spread_ns:.0f} ns, "
              f"measured mean RMS delay spread {spread * 1e9:.1f} ns")
    print()


def run_link(model, rake_fingers: int, ebn0_db: float, num_packets: int = 5):
    """BER of the gen-2 link over fresh channel realizations."""
    config = Gen2Config.fast_test_config().with_changes(
        rake_fingers=rake_fingers,
        channel_estimate_taps=48,
        use_mlse=True)
    channel_rng = np.random.default_rng(2)
    generator = SalehValenzuelaChannelGenerator(model, rng=channel_rng,
                                                complex_gains=True)
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(3))
    simulator = LinkSimulator(transceiver, rng=np.random.default_rng(4))
    point = simulator.ber_point(ebn0_db, num_packets=num_packets,
                                payload_bits_per_packet=64,
                                channel_factory=generator.realize)
    return point


def main() -> None:
    describe_channels()

    print("BER of the gen-2 link over CM1 (LOS) and CM3 (NLOS) channels")
    print(f"{'model':>6} {'fingers':>8} {'Eb/N0 [dB]':>11} {'BER':>10} {'PER':>6}")
    for model in (CM1, CM3):
        for fingers in (1, 4, 8):
            for ebn0 in (12.0, 18.0):
                point = run_link(model, fingers, ebn0)
                print(f"{model.name:>6} {fingers:>8} {ebn0:>11.1f} "
                      f"{point.ber:>10.3e} {point.per:>6.2f}")
    print()
    print("More RAKE fingers capture more of the channel's spread energy,")
    print("which is exactly the paper's argument for a programmable RAKE:")
    print("spend correlator power only when the channel demands it.")


if __name__ == "__main__":
    main()
