"""Quickstart: send one packet through the gen-2 direct-conversion transceiver.

This is the smallest end-to-end use of the library: build the second
generation (3.1-10.6 GHz, 100 Mbps class) transceiver, transmit a packet
over an AWGN channel at a chosen Eb/N0, and inspect what the receiver
recovered — acquisition, channel estimate, CRC, and payload bits.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Gen2Config, Gen2Transceiver
from repro.utils.bits import random_bits


def main() -> None:
    rng = np.random.default_rng(7)

    # A reduced-size configuration (shorter preamble, fewer channel-estimate
    # taps) that keeps the example fast while exercising the full receive
    # pipeline: AGC -> 5-bit SAR ADCs -> coarse acquisition -> channel
    # estimation -> RAKE -> demodulation -> Viterbi decoding -> CRC.
    config = Gen2Config.fast_test_config()
    transceiver = Gen2Transceiver(config, rng=rng)

    payload = random_bits(128, rng=rng)
    simulation = transceiver.simulate_packet(payload_bits=payload,
                                             ebn0_db=14.0, rng=rng)

    result = simulation.result
    receive = simulation.receive

    print("Gen-2 pulsed UWB link, single packet")
    print(f"  channel bit rate        : {config.data_rate_bps / 1e6:.1f} Mbps")
    print(f"  sub-band                : {config.channel_index} "
          f"({transceiver.transmitter.carrier_frequency_hz() / 1e9:.2f} GHz)")
    print(f"  ADC                     : 2 x {config.adc_bits}-bit SAR at "
          f"{config.adc_rate_hz / 1e6:.0f} MSps")
    print(f"  packet detected         : {result.detected}")
    print(f"  timing error            : {result.timing_error_samples} samples")
    print(f"  acquisition search time : {result.acquisition_time_s * 1e6:.2f} us")
    print(f"  CRC                     : {'OK' if result.crc_ok else 'FAILED'}")
    print(f"  payload bit errors      : {result.payload_bit_errors} "
          f"of {result.num_payload_bits}")

    estimate = receive.channel_estimate
    if estimate is not None:
        indices, values = estimate.strongest_taps(3)
        print("  strongest channel taps  : "
              + ", ".join(f"tap {int(i)} ({abs(v):.2f})"
                          for i, v in zip(indices, values)))

    recovered = receive.payload_bits
    print(f"  first 16 sent bits      : {payload[:16]}")
    print(f"  first 16 received bits  : {recovered[:16] if recovered.size else '(none)'}")


if __name__ == "__main__":
    main()
